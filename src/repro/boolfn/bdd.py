"""Reduced ordered binary decision diagrams (ROBDDs) for flow formulas.

The paper's flow domain is "Boolean functions" in the abstract; the CNF
representation of :mod:`repro.boolfn.cnf` is what the inference engine
uses, but BDDs are the classic alternative with *constant-time* equality
and cheap model counting, and they make the closure properties the paper
leans on (conjunction, existential projection — cf. Brauer/King/Kriener
[1] on ∃ as incremental SAT) directly executable.

This module provides a small, self-contained ROBDD package:

* hash-consed nodes with an apply cache (Bryant's algorithm),
* ``conjoin`` / ``disjoin`` / ``negate`` / ``implies``,
* ``exists`` — existential quantification of a set of variables,
* ``from_cnf`` / ``to_models`` — conversions to interoperate with the CNF
  side (used by the differential tests),
* ``count_models`` over a fixed vocabulary.

Variables are the same positive integers as CNF flags; the variable order
is numeric.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Optional

from .cnf import Cnf


class Bdd:
    """A BDD manager; nodes live inside one manager and never mix."""

    FALSE = 0
    TRUE = 1

    def __init__(self) -> None:
        # node id -> (var, low, high); ids 0/1 are the terminals.
        self._nodes: list[tuple[int, int, int]] = [
            (0, -1, -1),
            (0, -1, -1),
        ]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._apply_cache: dict[tuple[str, int, int], int] = {}
        self._exists_cache: dict[tuple[int, frozenset[int]], int] = {}

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------
    def _make(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes)
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def var(self, variable: int) -> int:
        """The BDD of a single positive variable."""
        if variable <= 0:
            raise ValueError("variables are positive integers")
        return self._make(variable, self.FALSE, self.TRUE)

    def literal(self, literal: int) -> int:
        """The BDD of a literal (negative = negated variable)."""
        if literal > 0:
            return self.var(literal)
        return self._make(-literal, self.TRUE, self.FALSE)

    def _var_of(self, node: int) -> int:
        return self._nodes[node][0]

    def _children(self, node: int) -> tuple[int, int]:
        _, low, high = self._nodes[node]
        return low, high

    # ------------------------------------------------------------------
    # apply
    # ------------------------------------------------------------------
    def _apply(self, op: str, left: int, right: int) -> int:
        terminal = _TERMINAL_OPS[op](left, right)
        if terminal is not None:
            return terminal
        key = (op, left, right)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        var_left = self._var_of(left) if left > 1 else None
        var_right = self._var_of(right) if right > 1 else None
        if var_right is None or (var_left is not None and var_left < var_right):
            var = var_left
            left_low, left_high = self._children(left)
            right_low = right_high = right
        elif var_left is None or var_right < var_left:
            var = var_right
            left_low = left_high = left
            right_low, right_high = self._children(right)
        else:
            var = var_left
            left_low, left_high = self._children(left)
            right_low, right_high = self._children(right)
        assert var is not None
        result = self._make(
            var,
            self._apply(op, left_low, right_low),
            self._apply(op, left_high, right_high),
        )
        self._apply_cache[key] = result
        return result

    def conjoin(self, left: int, right: int) -> int:
        return self._apply("and", left, right)

    def disjoin(self, left: int, right: int) -> int:
        return self._apply("or", left, right)

    def implies(self, left: int, right: int) -> int:
        return self.disjoin(self.negate(left), right)

    def negate(self, node: int) -> int:
        if node == self.FALSE:
            return self.TRUE
        if node == self.TRUE:
            return self.FALSE
        key = ("not", node, node)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        var = self._var_of(node)
        low, high = self._children(node)
        result = self._make(var, self.negate(low), self.negate(high))
        self._apply_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # quantification and restriction
    # ------------------------------------------------------------------
    def restrict(self, node: int, variable: int, value: bool) -> int:
        """The cofactor of ``node`` with ``variable`` fixed."""
        if node <= 1:
            return node
        var = self._var_of(node)
        low, high = self._children(node)
        if var == variable:
            return high if value else low
        if var > variable:
            return node
        return self._make(
            var,
            self.restrict(low, variable, value),
            self.restrict(high, variable, value),
        )

    def exists(self, node: int, variables: Iterable[int]) -> int:
        """∃ variables . node — the projection the paper's domain is
        closed under."""
        var_set = frozenset(variables)
        if not var_set or node <= 1:
            return node
        key = (node, var_set)
        cached = self._exists_cache.get(key)
        if cached is not None:
            return cached
        var = self._var_of(node)
        low, high = self._children(node)
        relevant = frozenset(v for v in var_set if v >= var)
        if var in var_set:
            result = self.disjoin(
                self.exists(low, relevant), self.exists(high, relevant)
            )
        else:
            result = self._make(
                var,
                self.exists(low, relevant),
                self.exists(high, relevant),
            )
        self._exists_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # conversions & queries
    # ------------------------------------------------------------------
    def from_cnf(self, cnf: Cnf) -> int:
        """Build the BDD of a CNF formula."""
        if cnf.known_unsat:
            return self.FALSE
        result = self.TRUE
        # Conjoin in sorted order for cache friendliness.
        for clause in sorted(cnf.clauses(), key=lambda c: (len(c), c)):
            clause_bdd = self.FALSE
            for literal in clause:
                clause_bdd = self.disjoin(clause_bdd, self.literal(literal))
            result = self.conjoin(result, clause_bdd)
            if result == self.FALSE:
                return result
        return result

    def is_satisfiable(self, node: int) -> bool:
        return node != self.FALSE

    def is_tautology(self, node: int) -> bool:
        return node == self.TRUE

    def any_model(self, node: int) -> Optional[dict[int, bool]]:
        """One satisfying assignment over the variables on the path."""
        if node == self.FALSE:
            return None
        model: dict[int, bool] = {}
        while node > 1:
            var = self._var_of(node)
            low, high = self._children(node)
            if low != self.FALSE:
                model[var] = False
                node = low
            else:
                model[var] = True
                node = high
        return model

    def count_models(self, node: int, vocabulary: Iterable[int]) -> int:
        """Number of models over the given vocabulary."""
        variables = sorted(set(vocabulary))
        order = {v: i for i, v in enumerate(variables)}
        cache: dict[tuple[int, int], int] = {}

        def count(node: int, position: int) -> int:
            if node == self.FALSE:
                return 0
            if node == self.TRUE:
                return 2 ** (len(variables) - position)
            var = self._var_of(node)
            if var not in order:
                raise ValueError(
                    f"node mentions variable {var} outside the vocabulary"
                )
            key = (node, position)
            cached = cache.get(key)
            if cached is not None:
                return cached
            index = order[var]
            if index < position:
                raise AssertionError("vocabulary out of order")
            skipped = 2 ** (index - position)
            low, high = self._children(node)
            result = skipped * (
                count(low, index + 1) + count(high, index + 1)
            )
            cache[key] = result
            return result

        return count(node, 0)

    def support(self, node: int) -> set[int]:
        """The variables the function actually depends on."""
        out: set[int] = set()
        seen: set[int] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current <= 1 or current in seen:
                continue
            seen.add(current)
            var, low, high = self._nodes[current]
            out.add(var)
            stack.append(low)
            stack.append(high)
        return out

    def size(self, node: int) -> int:
        """Number of internal nodes reachable from ``node``."""
        seen: set[int] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current <= 1 or current in seen:
                continue
            seen.add(current)
            _, low, high = self._nodes[current]
            stack.append(low)
            stack.append(high)
        return len(seen)


def _and_terminal(left: int, right: int) -> Optional[int]:
    if left == Bdd.FALSE or right == Bdd.FALSE:
        return Bdd.FALSE
    if left == Bdd.TRUE:
        return right
    if right == Bdd.TRUE:
        return left
    if left == right:
        return left
    return None


def _or_terminal(left: int, right: int) -> Optional[int]:
    if left == Bdd.TRUE or right == Bdd.TRUE:
        return Bdd.TRUE
    if left == Bdd.FALSE:
        return right
    if right == Bdd.FALSE:
        return left
    if left == right:
        return left
    return None


_TERMINAL_OPS = {"and": _and_terminal, "or": _or_terminal}
