"""The monotype semantics T[[·]] over sets of environments (Fig. 6).

``T[[e]] : P(X → M) → P(X ∪ {κ} → M)`` is the semantics the paper's two
inferences are derived from: each transfer function computes, for a set of
monotype environments, the set of result environments with the result type
bound to the distinguished name κ.  Lemma 1 states ``T[[e]] = α ∘ C[[e]] ∘ γ``
and Sect. 4.2/4.3 derive the polytype and flow inferences as abstractions of
T; the test suite checks both relationships on bounded universes.

The implementation enumerates over a finite universe of monotypes, so it is
only usable for tiny programs and universes — which is exactly what the
completeness experiments need (E12).

Environments are ordered tuples ``((name, type), ...)`` in binding order;
binding order matters for the let-bound (VAR) rule, whose instantiation
quantifies over the variables bound *after* x (Sect. 4.2, Ex. 4).
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..lang.ast import (
    App,
    BoolLit,
    EmptyRec,
    Expr,
    If,
    IntLit,
    Lam,
    Let,
    Select,
    Update,
    Var,
)
from ..types.terms import BOOL, Field, INT, TFun, TRec, Type

MonoEnv = tuple[tuple[str, Type], ...]
EnvSet = frozenset[MonoEnv]

KAPPA = "κ"  # the distinguished result name


def env_get(env: MonoEnv, name: str) -> Optional[Type]:
    for key, value in env:
        if key == name:
            return value
    return None


def env_set(env: MonoEnv, name: str, value: Type) -> MonoEnv:
    """Bind or rebind ``name`` (rebinding keeps the original position)."""
    for index, (key, _) in enumerate(env):
        if key == name:
            return env[:index] + ((name, value),) + env[index + 1 :]
    return env + ((name, value),)


def env_drop(env: MonoEnv, name: str) -> MonoEnv:
    return tuple((key, value) for key, value in env if key != name)


def env_frame(env: MonoEnv, upto: str) -> MonoEnv:
    """The bindings strictly before ``upto`` (the rigid part for (VAR))."""
    out = []
    for key, value in env:
        if key == upto:
            break
        out.append((key, value))
    return tuple(out)


class MonotypeSemantics:
    """T[[·]] over a finite universe of monotypes.

    ``universe`` must be closed enough for the program at hand (function
    types of the needed shapes, record types over the needed labels);
    ``lambda_bound`` tracks which variables are λ-bound (Xλ).
    """

    def __init__(self, universe: Iterable[Type],
                 max_fixpoint_iterations: int = 50) -> None:
        self.universe: tuple[Type, ...] = tuple(dict.fromkeys(universe))
        self.max_fixpoint_iterations = max_fixpoint_iterations
        self.lambda_bound: set[str] = set()

    # ------------------------------------------------------------------
    def run(self, expr: Expr, envs: Optional[EnvSet] = None) -> EnvSet:
        """Evaluate T[[expr]] on an environment set (default: the empty env)."""
        if envs is None:
            envs = frozenset({()})
        return self.eval(expr, envs)

    def result_types(self, expr: Expr) -> frozenset[Type]:
        """The κ-bound types of T[[expr]] run on the empty environment."""
        return frozenset(
            env_get(env, KAPPA)  # type: ignore[misc]
            for env in self.run(expr)
        )

    # ------------------------------------------------------------------
    def eval(self, expr: Expr, envs: EnvSet) -> EnvSet:
        if isinstance(expr, Var):
            return self.eval_var(expr, envs)
        if isinstance(expr, IntLit):
            return frozenset(env_set(env, KAPPA, INT) for env in envs)
        if isinstance(expr, BoolLit):
            return frozenset(env_set(env, KAPPA, BOOL) for env in envs)
        if isinstance(expr, EmptyRec):
            empty = TRec((), None)
            return frozenset(env_set(env, KAPPA, empty) for env in envs)
        if isinstance(expr, Select):
            return self.eval_select(expr, envs)
        if isinstance(expr, Update):
            return self.eval_update(expr, envs)
        if isinstance(expr, Lam):
            return self.eval_lam(expr, envs)
        if isinstance(expr, App):
            return self.eval_app(expr, envs)
        if isinstance(expr, Let):
            return self.eval_let(expr, envs)
        if isinstance(expr, If):
            return self.eval_if(expr, envs)
        raise NotImplementedError(
            f"monotype semantics does not cover {type(expr).__name__}"
        )

    # -- variables -------------------------------------------------------
    def eval_var(self, expr: Var, envs: EnvSet) -> EnvSet:
        name = expr.name
        if name in self.lambda_bound:
            out = set()
            for env in envs:
                value = env_get(env, name)
                if value is not None:
                    out.add(env_set(env, KAPPA, value))
            return frozenset(out)
        # let-bound: κ may take the x-value of ANY environment that agrees
        # on the bindings introduced before x (x and later bindings are
        # freely re-instantiable) — Fig. 6 / Ex. 4.
        by_frame: dict[MonoEnv, set[Type]] = {}
        for env in envs:
            value = env_get(env, name)
            if value is None:
                continue
            by_frame.setdefault(env_frame(env, name), set()).add(value)
        out = set()
        for env in envs:
            if env_get(env, name) is None:
                continue
            for value in by_frame.get(env_frame(env, name), ()):
                out.add(env_set(env, KAPPA, value))
        return frozenset(out)

    # -- record operations -------------------------------------------------
    def record_types(self) -> list[TRec]:
        return [t for t in self.universe if isinstance(t, TRec)]

    def eval_select(self, expr: Select, envs: EnvSet) -> EnvSet:
        out = set()
        for env in envs:
            for record in self.record_types():
                field = record.field(expr.label)
                if field is not None:
                    fn = TFun(record, field.type)
                    if fn in self.universe or True:
                        out.add(env_set(env, KAPPA, fn))
        return frozenset(out)

    def eval_update(self, expr: Update, envs: EnvSet) -> EnvSet:
        value_envs = self.eval(expr.value, envs)
        out = set()
        for env in value_envs:
            value_type = env_get(env, KAPPA)
            assert value_type is not None
            for record in self.record_types():
                fields = tuple(
                    f for f in record.fields if f.label != expr.label
                ) + (Field(expr.label, value_type),)
                updated = TRec(tuple(sorted(fields, key=lambda f: f.label)), None)
                out.add(env_set(env, KAPPA, TFun(record, updated)))
        return frozenset(out)

    # -- core constructs ---------------------------------------------------
    def eval_lam(self, expr: Lam, envs: EnvSet) -> EnvSet:
        param = expr.param
        was_lambda = param in self.lambda_bound
        self.lambda_bound.add(param)
        widened = frozenset(
            env_drop(env, param) + ((param, t),)
            for env in envs
            for t in self.universe
        )
        body_envs = self.eval(expr.body, widened)
        if not was_lambda:
            self.lambda_bound.discard(param)
        out = set()
        for env in body_envs:
            arg_type = env_get(env, param)
            res_type = env_get(env, KAPPA)
            assert arg_type is not None and res_type is not None
            stripped = env_drop(env_drop(env, param), KAPPA)
            out.add(stripped + ((KAPPA, TFun(arg_type, res_type)),))
        return frozenset(out)

    def eval_app(self, expr: App, envs: EnvSet) -> EnvSet:
        fn_envs = self.eval(expr.fn, envs)
        arg_envs = self.eval(expr.arg, envs)
        arg_by_base: dict[MonoEnv, set[Type]] = {}
        for env in arg_envs:
            base = env_drop(env, KAPPA)
            value = env_get(env, KAPPA)
            assert value is not None
            arg_by_base.setdefault(base, set()).add(value)
        out = set()
        for env in fn_envs:
            fn_type = env_get(env, KAPPA)
            if not isinstance(fn_type, TFun):
                continue
            base = env_drop(env, KAPPA)
            if fn_type.arg in arg_by_base.get(base, ()):
                out.add(env_set(env, KAPPA, fn_type.res))
        return frozenset(out)

    def eval_let(self, expr: Let, envs: EnvSet) -> EnvSet:
        name = expr.name
        was_lambda = name in self.lambda_bound
        self.lambda_bound.discard(name)
        current = frozenset(
            env_drop(env, name) + ((name, t),)
            for env in envs
            for t in self.universe
        )
        for _ in range(self.max_fixpoint_iterations):
            bound_envs = self.eval(expr.bound, current)
            updated = set()
            for env in bound_envs:
                value = env_get(env, KAPPA)
                assert value is not None
                updated.add(env_set(env_drop(env, KAPPA), name, value))
            next_set = frozenset(updated) & current
            if next_set == current:
                break
            current = next_set
        else:
            raise RuntimeError("monotype let fixpoint did not converge")
        body_envs = self.eval(expr.body, current)
        if was_lambda:
            self.lambda_bound.add(name)
        return frozenset(env_drop(env, name) for env in body_envs)

    def eval_if(self, expr: If, envs: EnvSet) -> EnvSet:
        cond_envs = self.eval(expr.cond, envs)
        feasible = frozenset(
            env_drop(env, KAPPA)
            for env in cond_envs
            if env_get(env, KAPPA) == INT
        )
        then_envs = self.eval(expr.then, feasible)
        else_envs = self.eval(expr.orelse, feasible)
        return then_envs & else_envs
