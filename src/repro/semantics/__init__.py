"""Concrete, collecting and monotype semantics, plus the αR/γR abstraction."""

from .abstraction import alpha, contains_nonempty_record, gamma, model
from .collecting import (
    DivergedOutcome,
    OmegaOutcome,
    Outcome,
    collect_outcomes,
    has_missing_field_path,
    has_omega_path,
)
from .denotational import Interpreter, default_runtime_env, evaluate
from .monotype import KAPPA, MonotypeSemantics
from .values import (
    Env,
    MissingFieldError,
    NonTermination,
    Omega,
    Value,
    VBool,
    VBuiltin,
    VClosure,
    VInt,
    VList,
    VRecord,
)

__all__ = [
    "DivergedOutcome",
    "Env",
    "Interpreter",
    "KAPPA",
    "MissingFieldError",
    "MonotypeSemantics",
    "NonTermination",
    "Omega",
    "OmegaOutcome",
    "Outcome",
    "VBool",
    "VBuiltin",
    "VClosure",
    "VInt",
    "VList",
    "VRecord",
    "Value",
    "alpha",
    "collect_outcomes",
    "contains_nonempty_record",
    "default_runtime_env",
    "evaluate",
    "gamma",
    "has_missing_field_path",
    "has_omega_path",
    "model",
]
