"""The concrete semantics S[[·]]: a call-by-value interpreter (Sect. 4.1).

Conditionals branch on an integer scrutinee (non-zero = then branch), as in
Milner's semantics; the *collecting* semantics that the type inference is
derived from additionally abstracts conditionals to a non-deterministic
choice — that variant lives in :mod:`repro.semantics.collecting` and shares
this evaluator through the ``Chooser`` hook.

Recursion: ``let x = e in e'`` ties the knot with a mutable cell, so
``let f = \\n -> ... f ... in ...`` works; reading ``x`` during the
evaluation of its own right-hand side (other than under a lambda) is Ω.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..lang.ast import (
    App,
    BoolLit,
    Concat,
    EmptyRec,
    Expr,
    If,
    IntLit,
    Lam,
    Let,
    ListLit,
    Remove,
    Rename,
    Select,
    Update,
    Var,
    When,
)
from .values import (
    Env,
    MissingFieldError,
    NonTermination,
    Omega,
    Value,
    VBool,
    VBuiltin,
    VClosure,
    VInt,
    VList,
    VRecord,
)

# A chooser decides conditional branches.  The concrete semantics tests the
# scrutinee; the collecting semantics enumerates both branches.
Chooser = Callable[[Value], bool]


def concrete_chooser(scrutinee: Value) -> bool:
    """Branch on the integer scrutinee: non-zero means the then branch."""
    if not isinstance(scrutinee, VInt):
        raise Omega(f"condition is not an integer: {scrutinee!r}")
    return scrutinee.value != 0


class _BlackHole:
    """Placeholder for a let binding while its own RHS evaluates."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<blackhole>"


class Interpreter:
    """Evaluator with a step budget and a pluggable branch chooser."""

    def __init__(
        self,
        chooser: Chooser = concrete_chooser,
        max_steps: int = 100_000,
    ) -> None:
        self.chooser = chooser
        self.max_steps = max_steps
        self.steps = 0

    def eval(self, expr: Expr, env: Optional[Env] = None) -> Value:
        """Evaluate ``expr``; raises :class:`Omega` on dynamic type errors."""
        return self._eval(expr, dict(env or {}))

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise NonTermination(f"exceeded {self.max_steps} steps")

    def _eval(self, expr: Expr, env: dict[str, object]) -> Value:
        self._tick()
        if isinstance(expr, Var):
            try:
                value = env[expr.name]
            except KeyError:
                raise Omega(f"unbound variable {expr.name!r}") from None
            value = _deref(value)
            if isinstance(value, _BlackHole):
                raise Omega(
                    f"variable {expr.name!r} used during its own definition"
                )
            return value
        if isinstance(expr, IntLit):
            return VInt(expr.value)
        if isinstance(expr, BoolLit):
            return VBool(expr.value)
        if isinstance(expr, ListLit):
            return VList(tuple(self._eval(item, env) for item in expr.items))
        if isinstance(expr, EmptyRec):
            return VRecord({})
        if isinstance(expr, Lam):
            return VClosure(expr.param, expr.body, dict(env))
        if isinstance(expr, Select):
            label = expr.label
            return VBuiltin(f"#{label}", lambda v: _as_record(v).get(label))
        if isinstance(expr, Remove):
            label = expr.label
            return VBuiltin(
                f"~{label}", lambda v: _as_record(v).without(label)
            )
        if isinstance(expr, Rename):
            old, new = expr.old_label, expr.new_label
            return VBuiltin(f"@[{old}->{new}]", lambda v: _rename(v, old, new))
        if isinstance(expr, Update):
            label = expr.label
            value = self._eval(expr.value, env)
            return VBuiltin(
                f"@{{{label}=...}}", lambda v: _as_record(v).set(label, value)
            )
        if isinstance(expr, App):
            fn = self._eval(expr.fn, env)
            argument = self._eval(expr.arg, env)
            return self.apply(fn, argument)
        if isinstance(expr, Let):
            cell = [_BlackHole()]
            inner = dict(env)
            inner[expr.name] = cell
            bound = self._eval(expr.bound, inner)
            cell[0] = bound
            return self._eval(expr.body, inner)
        if isinstance(expr, If):
            scrutinee = self._eval(expr.cond, env)
            branch = expr.then if self.chooser(scrutinee) else expr.orelse
            return self._eval(branch, env)
        if isinstance(expr, Concat):
            left = _as_record(self._eval(expr.left, env))
            right = _as_record(self._eval(expr.right, env))
            merged = dict(left.fields)
            for label, value in right.fields.items():
                if expr.symmetric and label in merged:
                    raise MissingFieldError(
                        label,
                        f"symmetric concatenation: field {label!r} on both sides",
                    )
                merged[label] = value
            return VRecord(merged)
        if isinstance(expr, When):
            try:
                record = env[expr.record]
            except KeyError:
                raise Omega(f"unbound variable {expr.record!r}") from None
            record = _as_record(_deref(record))
            branch = expr.then if record.has(expr.label) else expr.orelse
            return self._eval(branch, env)
        raise TypeError(f"unknown expression node {expr!r}")

    def apply(self, fn: Value, argument: Value) -> Value:
        """Apply a function value."""
        self._tick()
        if isinstance(fn, VClosure):
            inner = dict(fn.env)
            inner[fn.param] = argument
            return self._eval(fn.body, inner)
        if isinstance(fn, VBuiltin):
            return fn.fn(argument)
        raise Omega(f"application of a non-function: {fn!r}")


def _deref(value: object) -> Value:
    """Unwrap a recursive let cell."""
    if isinstance(value, list):
        return value[0]
    return value  # type: ignore[return-value]


def _as_record(value: Value) -> VRecord:
    if not isinstance(value, VRecord):
        raise Omega(f"expected a record, got {value!r}")
    return value


def _rename(value: Value, old: str, new: str) -> VRecord:
    record = _as_record(value)
    moved = record.get(old)
    return record.without(old).set(new, moved)


def _int_binop(name, op):
    def outer(a: Value) -> Value:
        if not isinstance(a, VInt):
            raise Omega(f"{name}: expected an integer, got {a!r}")

        def inner(b: Value) -> Value:
            if not isinstance(b, VInt):
                raise Omega(f"{name}: expected an integer, got {b!r}")
            return op(a, b)

        return VBuiltin(f"{name}({a.value})", inner)

    return VBuiltin(name, outer)


def _bool_binop(name, op):
    def outer(a: Value) -> Value:
        if not isinstance(a, VBool):
            raise Omega(f"{name}: expected a boolean, got {a!r}")

        def inner(b: Value) -> Value:
            if not isinstance(b, VBool):
                raise Omega(f"{name}: expected a boolean, got {b!r}")
            return VBool(op(a.value, b.value))

        return VBuiltin(f"{name}(...)", inner)

    return VBuiltin(name, outer)


def _as_list(name: str, value: Value) -> VList:
    if not isinstance(value, VList):
        raise Omega(f"{name}: expected a list, got {value!r}")
    return value


def _head(value: Value) -> Value:
    items = _as_list("head", value).items
    if not items:
        raise Omega("head of an empty list")
    return items[0]


def _tail(value: Value) -> Value:
    items = _as_list("tail", value).items
    if not items:
        raise Omega("tail of an empty list")
    return VList(items[1:])


def _cons(head: Value) -> Value:
    return VBuiltin(
        "cons(...)",
        lambda tail: VList((head,) + _as_list("cons", tail).items),
    )


def default_runtime_env() -> dict[str, Value]:
    """Runtime counterparts of :data:`repro.infer.builtins.DEFAULT_BUILTINS`.

    ``eq``/``lt``/``null`` return Int (1/0) so their results can be used as
    ``if`` scrutinees, matching the typing of the builtins.
    ``some_condition``/``coin`` default to 0 in the deterministic semantics;
    the collecting semantics ignores scrutinees anyway.
    """
    return {
        "plus": _int_binop("plus", lambda a, b: VInt(a.value + b.value)),
        "minus": _int_binop("minus", lambda a, b: VInt(a.value - b.value)),
        "times": _int_binop("times", lambda a, b: VInt(a.value * b.value)),
        "eq": _int_binop("eq", lambda a, b: VInt(int(a.value == b.value))),
        "lt": _int_binop("lt", lambda a, b: VInt(int(a.value < b.value))),
        "and": _bool_binop("and", lambda a, b: a and b),
        "or": _bool_binop("or", lambda a, b: a or b),
        "not": VBuiltin(
            "not",
            lambda v: VBool(not v.value)
            if isinstance(v, VBool)
            else _raise_omega("not: expected a boolean"),
        ),
        "positive": VBuiltin(
            "positive",
            lambda v: VBool(v.value > 0)
            if isinstance(v, VInt)
            else _raise_omega("positive: expected an integer"),
        ),
        "null": VBuiltin(
            "null", lambda v: VInt(int(not _as_list("null", v).items))
        ),
        "head": VBuiltin("head", _head),
        "tail": VBuiltin("tail", _tail),
        "cons": VBuiltin("cons", _cons),
        "some_condition": VInt(0),
        "coin": VInt(0),
    }


def _raise_omega(message: str) -> Value:
    raise Omega(message)


def evaluate(expr: Expr, env: Optional[Env] = None,
             max_steps: int = 100_000) -> Value:
    """Evaluate with the concrete (integer-tested) conditional semantics.

    The default builtins are in scope; caller bindings override them.
    """
    merged = default_runtime_env()
    merged.update(dict(env or {}))
    return Interpreter(max_steps=max_steps).eval(expr, merged)
