"""The collecting semantics C[[·]]: conditionals as non-deterministic choice.

The paper derives its inference from a semantics "in which the if-statement
is abstracted to a non-deterministic choice" (Sect. 3/4).  This module
enumerates all execution paths of a program under that abstraction and
collects the outcomes.  It is the ground truth for the Observation 1 tests:

    the inference rejects a program iff some path reaches a field access
    on a record that never received the field.

Outcomes are either values, the error Ω (with the missing-field case
distinguished), or "no observation" for paths exceeding the step budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..lang.ast import Expr
from .denotational import Interpreter, default_runtime_env
from .values import Env, MissingFieldError, NonTermination, Omega, Value


@dataclass(frozen=True)
class OmegaOutcome:
    """A path ended in the error value Ω."""

    message: str
    missing_field: Optional[str] = None

    def __repr__(self) -> str:
        return f"Ω({self.message})"


@dataclass(frozen=True)
class DivergedOutcome:
    """A path exceeded the step budget — no observation."""

    def __repr__(self) -> str:
        return "⋯"


Outcome = Union[Value, OmegaOutcome, DivergedOutcome]


class _PathChooser:
    """Replays a fixed prefix of branch decisions; records extension needs."""

    def __init__(self, path: tuple[bool, ...]) -> None:
        self.path = path
        self.used = 0
        self.exhausted = False

    def __call__(self, scrutinee: Value) -> bool:
        # The scrutinee is ignored: the choice is non-deterministic, but the
        # scrutinee was still evaluated (its own errors propagate).
        if self.used < len(self.path):
            decision = self.path[self.used]
            self.used += 1
            return decision
        self.exhausted = True
        raise _NeedLongerPath()


class _NeedLongerPath(Exception):
    """Internal: evaluation hit a branch beyond the decided prefix."""


def collect_outcomes(
    expr: Expr,
    env: Optional[Env] = None,
    max_steps: int = 20_000,
    max_paths: int = 4096,
) -> list[tuple[tuple[bool, ...], Outcome]]:
    """Evaluate ``expr`` along every non-deterministic path.

    Returns (path, outcome) pairs; ``path`` lists the branch decisions in
    evaluation order.  Exploration is depth-first over decision prefixes and
    stops (raising ``RuntimeError``) if more than ``max_paths`` complete
    paths exist.
    """
    results: list[tuple[tuple[bool, ...], Outcome]] = []
    stack: list[tuple[bool, ...]] = [()]
    while stack:
        if len(results) > max_paths:
            raise RuntimeError(f"more than {max_paths} execution paths")
        path = stack.pop()
        chooser = _PathChooser(path)
        interpreter = Interpreter(chooser=chooser, max_steps=max_steps)
        merged = default_runtime_env()
        merged.update(dict(env or {}))
        try:
            value = interpreter.eval(expr, merged)
        except _NeedLongerPath:
            stack.append(path + (False,))
            stack.append(path + (True,))
            continue
        except MissingFieldError as error:
            results.append(
                (path, OmegaOutcome(str(error), missing_field=error.label))
            )
            continue
        except Omega as error:
            results.append((path, OmegaOutcome(str(error))))
            continue
        except NonTermination:
            results.append((path, DivergedOutcome()))
            continue
        results.append((path, value))
    return results


def has_missing_field_path(
    expr: Expr,
    env: Optional[Env] = None,
    max_steps: int = 20_000,
    max_paths: int = 4096,
) -> bool:
    """True iff some non-deterministic path hits a missing-field access.

    This is the right-hand side of Observation 1 ("contains a path from an
    empty record to a field access on which the field has not been added").
    """
    outcomes = collect_outcomes(expr, env, max_steps, max_paths)
    return any(
        isinstance(outcome, OmegaOutcome) and outcome.missing_field is not None
        for _, outcome in outcomes
    )


def has_omega_path(
    expr: Expr,
    env: Optional[Env] = None,
    max_steps: int = 20_000,
    max_paths: int = 4096,
) -> bool:
    """True iff some path raises any dynamic type error Ω."""
    outcomes = collect_outcomes(expr, env, max_steps, max_paths)
    return any(isinstance(outcome, OmegaOutcome) for _, outcome in outcomes)
