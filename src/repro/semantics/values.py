"""Runtime values U of the concrete semantics (Sect. 4.1).

The universe contains integers, Booleans, lists, closures, builtins and
records; the special error value Ω ("a run-time type error") is modelled by
the :class:`Omega` exception hierarchy, with :class:`MissingFieldError` as
the distinguished "access to a non-existent field" error that the paper's
inference is designed to rule out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Union

from ..lang.ast import Expr


class Omega(Exception):
    """The error value Ω: a dynamic type error."""


class MissingFieldError(Omega):
    """Selection (or symmetric-concat conflict) on a missing field."""

    def __init__(self, label: str, message: str | None = None) -> None:
        super().__init__(message or f"record has no field {label!r}")
        self.label = label


class NonTermination(Exception):
    """Raised when the step budget of the interpreter is exhausted.

    Not an Ω: the concrete semantics assigns no error to divergence; tests
    treat it as "no observation".
    """


@dataclass(frozen=True)
class VInt:
    """An integer value."""

    value: int

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class VBool:
    """A Boolean value."""

    value: bool

    def __repr__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class VList:
    """A list value."""

    items: tuple["Value", ...]

    def __repr__(self) -> str:
        return "[" + ", ".join(map(repr, self.items)) + "]"


@dataclass(frozen=True)
class VRecord:
    """A record value: a finite map from labels to values."""

    fields: Mapping[str, "Value"] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "fields", dict(self.fields))

    def has(self, label: str) -> bool:
        return label in self.fields

    def get(self, label: str) -> "Value":
        try:
            return self.fields[label]
        except KeyError:
            raise MissingFieldError(label) from None

    def set(self, label: str, value: "Value") -> "VRecord":
        updated = dict(self.fields)
        updated[label] = value
        return VRecord(updated)

    def without(self, label: str) -> "VRecord":
        remaining = {k: v for k, v in self.fields.items() if k != label}
        return VRecord(remaining)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k} = {v!r}" for k, v in sorted(self.fields.items()))
        return "{" + inner + "}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VRecord) and dict(self.fields) == dict(
            other.fields
        )

    def __hash__(self) -> int:
        return hash(tuple(sorted(self.fields.items(), key=lambda kv: kv[0])))


@dataclass(frozen=True)
class VClosure:
    """A function value: λparam.body closed over ``env``."""

    param: str
    body: Expr
    env: "Env"

    def __repr__(self) -> str:
        return f"<closure \\{self.param} -> ...>"

    def __eq__(self, other: object) -> bool:  # closures compare by identity
        return self is other

    def __hash__(self) -> int:
        return id(self)


@dataclass(frozen=True)
class VBuiltin:
    """A builtin function; ``fn`` maps a value to a value (may raise Ω)."""

    name: str
    fn: Callable[["Value"], "Value"]

    def __repr__(self) -> str:
        return f"<builtin {self.name}>"

    def __eq__(self, other: object) -> bool:
        return self is other

    def __hash__(self) -> int:
        return id(self)


Value = Union[VInt, VBool, VList, VRecord, VClosure, VBuiltin]
Env = Mapping[str, Value]
