"""Abstraction between monotype sets and flagged types (Fig. 7, Sect. 4.3).

``model(tR, t)`` extracts, for a flagged type tR and one monotype t that
matches its stripped skeleton, the set of flags that "hold": a field flag
holds when the field is present in t, a row flag when t has fields beyond
the explicit ones, and a variable flag when the monotype it stands for
contains a non-empty record anywhere (t ∉ M̄ in the paper's notation).

On top of ``model`` sit the abstraction/concretization pair

    αR(T) = ⟨ ⇑(lca(T)),  β with [[β]] = { model(tR, t) | t ∈ T } ⟩
    γR(⟨tR, β⟩) = { t ∈ ground(⇓ tR) | model(tR, t) ∈ [[β]] }

used by the completeness tests: the flow inference's result should describe
exactly ``αR`` of the monotype semantics' result on programs where the
optimality lemmas apply (E12), and at least contain it (soundness) in
general.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..boolfn.cnf import Cnf
from ..boolfn.flags import FlagSupply
from ..types.lattice import instance_of, lca_many
from ..types.project import decorate, strip
from ..types.terms import (
    TFun,
    TList,
    TRec,
    TVar,
    Type,
    VarSupply,
    all_flags,
    is_monotype,
)


def contains_nonempty_record(t: Type) -> bool:
    """t ∉ M̄: the monotype contains a record with at least one field."""
    if isinstance(t, TRec):
        if t.fields:
            return True
        return False
    if isinstance(t, TList):
        return contains_nonempty_record(t.elem)
    if isinstance(t, TFun):
        return contains_nonempty_record(t.arg) or contains_nonempty_record(
            t.res
        )
    return False


def model(flagged: Type, mono: Type) -> Optional[frozenset[int]]:
    """The flags of ``flagged`` satisfied by the matching monotype ``mono``.

    Returns None when ``mono`` does not structurally match the stripped
    skeleton of ``flagged`` (e.g. a function against an Int).
    """
    out: set[int] = set()
    if _model(flagged, mono, out):
        return frozenset(out)
    return None


def _model(flagged: Type, mono: Type, out: set[int]) -> bool:
    if isinstance(flagged, TVar):
        if flagged.flag is not None and contains_nonempty_record(mono):
            out.add(flagged.flag)
        return True
    if isinstance(flagged, TFun):
        if not isinstance(mono, TFun):
            return False
        return _model(flagged.arg, mono.arg, out) and _model(
            flagged.res, mono.res, out
        )
    if isinstance(flagged, TList):
        if not isinstance(mono, TList):
            return False
        return _model(flagged.elem, mono.elem, out)
    if isinstance(flagged, TRec):
        if not isinstance(mono, TRec):
            return False
        explicit = set()
        for field in flagged.fields:
            explicit.add(field.label)
            mono_field = mono.field(field.label)
            if mono_field is not None:
                if field.flag is not None:
                    out.add(field.flag)
                if not _model(field.type, mono_field.type, out):
                    return False
        if flagged.row is not None and flagged.row.flag is not None:
            if any(f.label not in explicit for f in mono.fields):
                out.add(flagged.row.flag)
        elif flagged.row is None:
            if any(f.label not in explicit for f in mono.fields):
                return False
        return True
    # Base types: Int/Bool/constants — structural equality, no flags.
    return strip(flagged) == mono


def alpha(
    monotypes: Iterable[Type],
    var_supply: Optional[VarSupply] = None,
    flag_supply: Optional[FlagSupply] = None,
) -> Optional[tuple[Type, set[frozenset[int]]]]:
    """αR: the decorated lca and the set of flag models (Sect. 4.3).

    Returns ``(tR, models)`` where ``models`` enumerates
    ``{model(tR, t) | t ∈ monotypes}``, or None for the empty set (⊥).
    """
    monotypes = list(monotypes)
    var_supply = var_supply or VarSupply()
    flag_supply = flag_supply or FlagSupply()
    generalized = lca_many(monotypes, var_supply)
    if generalized is None:
        return None
    flagged = decorate(generalized, flag_supply)
    models: set[frozenset[int]] = set()
    for mono in monotypes:
        extracted = model(flagged, mono)
        if extracted is None:
            raise AssertionError(
                f"lca result {generalized!r} does not cover {mono!r}"
            )
        models.add(extracted)
    return flagged, models


def gamma(
    flagged: Type, beta: Cnf, universe: Iterable[Type]
) -> list[Type]:
    """γR intersected with a bounded universe of monotypes.

    The members of ``universe`` that are ground instances of ⇓(tR) and whose
    flag model satisfies β (projected onto the flags of tR).
    """
    flags = set(all_flags(flagged))
    out = []
    for mono in universe:
        if not is_monotype(mono):
            continue
        if not instance_of(mono, strip(flagged)):
            continue
        extracted = model(flagged, mono)
        if extracted is None:
            continue
        assignment = {flag: flag in extracted for flag in flags}
        if _satisfies(beta, assignment, flags):
            out.append(mono)
    return out


def _satisfies(
    beta: Cnf, assignment: dict[int, bool], fixed: set[int]
) -> bool:
    """Is the partial assignment extendable to a model of β?

    Flags of the type are fixed; all other variables are existential.
    """
    from ..boolfn.classify import solve

    probe = beta.copy()
    for var, value in assignment.items():
        probe.add_unit(var if value else -var)
    return solve(probe) is not None
