"""Command-line interface: ``rowpoly`` / ``python -m repro``.

Subcommands:

* ``infer FILE``     — type-check a program with a chosen engine,
* ``check PATH...``  — batch-check module files (``--jobs/--json/--trace``;
  ``--server ADDR`` routes through a running daemon),
* ``serve``          — run the persistent inference daemon (stdio or TCP),
* ``client``         — one raw JSON-RPC call against a running daemon,
* ``cache``          — administer the persistent result store
  (``stats``/``gc``/``verify``/``clear``),
* ``audit``          — corpus-scale audit pipeline: ``run`` a corpus
  into a deterministic findings document, ``report`` triage summaries,
  ``diff`` against a baseline (the CI gate),
* ``eval FILE``      — run a program under the concrete semantics,
* ``bench fig9``     — regenerate the Fig. 9 table,
* ``generate``       — emit a synthetic decoder specification.

Exit codes follow the usual compiler convention: 0 = well-typed, 1 =
ill-typed, 2 = parse/usage error, 3 = partial (a ``--budget-*`` resource
limit aborted some declarations).  Diagnostics go to stderr; structured
output (``--json``) goes to stdout and never contains timings, so the
output of ``check --jobs N`` is byte-identical for every N — and so is
``check --server`` against the offline run, which is the daemon's parity
contract.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from .api import check_source
from .boolfn.engine import SolverStats
from .gdsl import FIG9_CORPORA, GeneratorConfig, build_corpus, generate_decoder
from .infer import FlowOptions, InferenceError, InferSession, infer_flow
from .infer.registry import REGISTRY
from .lang import LexError, ParseError, parse, parse_module
from .lang.ast import IntLit, Let
from .semantics import Omega, evaluate
from .types.project import strip
from .util import Budget, run_deep

#: File extension collected when a ``check`` path is a directory.
MODULE_SUFFIX = ".rp"

EXIT_OK = 0
EXIT_ILL_TYPED = 1
EXIT_USAGE = 2


def _read_program(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def cmd_infer(args: argparse.Namespace) -> int:
    try:
        source = _read_program(args.file)
        expr = run_deep(lambda: parse(source))
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    except (ParseError, LexError) as error:
        print(f"parse error: {error}", file=sys.stderr)
        return EXIT_USAGE
    try:
        if args.engine == "flow":
            options = FlowOptions(
                track_fields=not args.no_fields,
                gc=not args.no_gc,
                lazy_fields=args.lazy_fields,
                when_conditional=args.when_conditional,
                symcat_must=args.symcat_must,
            )
            result = run_deep(lambda: infer_flow(expr, options))
            print(f"type    : {strip(result.type)!r}")
            print(f"flagged : {result.type!r}")
            print(f"clauses : {len(result.beta)} ({result.formula_class.value})")
            if args.show_flow:
                from .infer.signatures import signature

                sig = signature(result)
                print(f"signature: {sig.type_text}")
                if sig.flow_text:
                    print(f"    where {sig.flow_text}")
            if args.stats:
                for key, value in result.stats.as_dict().items():
                    print(f"  {key}: {value}")
            if args.solver_stats:
                import json

                stats = (
                    result.solver_stats.as_dict()
                    if result.solver_stats is not None
                    else {}
                )
                print(json.dumps(stats, indent=2, sort_keys=True))
        else:
            runner = REGISTRY.expression_runner(args.engine)
            result = run_deep(lambda: runner(expr))
            print(f"type    : {result.type!r}")
    except InferenceError as error:
        print(f"type error[{error.diagnostic.code}]: {error}",
              file=sys.stderr)
        _print_diagnostic_details(error.diagnostics)
        return EXIT_ILL_TYPED
    return EXIT_OK


def _print_diagnostic_details(diagnostics) -> None:
    """The indented witness/related lines under an error header.

    One rendering for every text surface (``infer`` and ``check``); the
    header line differs per command, the detail lines do not.
    """
    for diagnostic in diagnostics:
        witness = diagnostic.witness_text()
        if witness:
            print(f"  witness: {witness}", file=sys.stderr)
        for message, pos in diagnostic.related:
            print(f"  note: {message} ({pos})", file=sys.stderr)


# ---------------------------------------------------------------------------
# check: batch module checking through inference sessions
# ---------------------------------------------------------------------------
def _collect_check_files(paths: list[str]) -> list[str] | None:
    """Expand directories into their ``*.rp`` files; None on a bad path."""
    files: list[str] = []
    for path in paths:
        if path == "-":
            files.append(path)
        elif os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs.sort()
                files.extend(
                    os.path.join(root, name)
                    for name in sorted(names)
                    if name.endswith(MODULE_SUFFIX)
                )
        elif os.path.isfile(path):
            files.append(path)
        else:
            print(f"error: no such file or directory: {path}",
                  file=sys.stderr)
            return None
    return files


def _budget_params_from_args(args: argparse.Namespace) -> dict | None:
    """The wire-shaped budget spec from ``--budget-*`` flags, or ``None``.

    A *spec*, not a :class:`~repro.util.Budget`: budgets are stateful
    (their wall clock starts at construction), so each check — possibly
    in another process or on the daemon — builds its own fresh instance.
    """
    spec: dict[str, object] = {}
    if getattr(args, "budget_ms", None) is not None:
        spec["ms"] = args.budget_ms
    if getattr(args, "budget_solver_steps", None) is not None:
        spec["solver_steps"] = args.budget_solver_steps
    if getattr(args, "budget_max_clauses", None) is not None:
        spec["max_clauses"] = args.budget_max_clauses
    if getattr(args, "budget_core_queries", None) is not None:
        spec["core_queries"] = args.budget_core_queries
    return spec or None


def _resolve_store_dir(args: argparse.Namespace) -> str | None:
    """The store directory from ``--store`` or ``ROWPOLY_STORE``."""
    explicit = getattr(args, "store", None)
    return explicit or os.environ.get("ROWPOLY_STORE") or None


#: Per-process persistent-store handles, keyed by directory.  ``check
#: --jobs N`` workers are spawned processes; each opens the shared
#: directory once and keeps its own memory layer in front of it.
_WORKER_STORES: dict[str, object] = {}


def _open_worker_store(store_dir: str | None):
    if store_dir is None:
        return None
    store = _WORKER_STORES.get(store_dir)
    if store is None:
        from .store import open_store

        store = _WORKER_STORES[store_dir] = open_store(store_dir)
    return store


def _check_one_file(
    item: tuple[str, str, FlowOptions, dict | None, str | None]
) -> dict[str, object]:
    """Check one module file; the unit of work for the ``--jobs`` pool.

    The returned payload is a plain dict (picklable, JSON-ready except for
    the ``solver_stats`` record) and carries timings separately from the
    stable ``report`` part, so the ``--json`` output can stay
    deterministic across worker counts.  The check itself is the public
    :func:`repro.api.check_source` facade over the same routine the
    daemon serves, which is what makes ``--server`` parity structural.
    """
    path, engine, options, budget_spec, store_dir = item
    try:
        source = _read_program(path)
    except OSError as error:
        return {
            "file": path,
            "report": {"file": path, "ok": False, "error": "IOError",
                       "message": str(error)},
            "exit": EXIT_USAGE,
            "trace": {},
            "solver_stats": None,
        }
    budget = (
        Budget.from_params(budget_spec) if budget_spec is not None else None
    )
    outcome = check_source(
        source, path, engine=engine, options=options, budget=budget,
        store=_open_worker_store(store_dir),
    )
    return {
        "file": path,
        "report": outcome.report,
        "exit": outcome.exit_code,
        "trace": outcome.trace,
        "solver_stats": outcome.solver_stats,
    }


def _code_suffix(payload: dict[str, object]) -> str:
    """``[RP####]`` when the payload carries a diagnostic code."""
    code = payload.get("code")
    return f"[{code}]" if code else ""


def _print_payload_diagnostics(payload: dict[str, object]) -> None:
    """Witness/related lines from a JSON payload's diagnostic dicts.

    The dict twin of :func:`_print_diagnostic_details`: ``check``
    renders from the stable report (also when it came over the wire
    from a daemon), so the text output is identical offline and
    ``--server``.
    """
    for diagnostic in payload.get("diagnostics") or []:
        steps = diagnostic.get("witness") or []
        if steps:
            witness = " -> ".join(step["description"] for step in steps)
            print(f"  witness: {witness}", file=sys.stderr)
        for note in diagnostic.get("related") or []:
            pos = note.get("pos") or {}
            where = f"{pos.get('line', '?')}:{pos.get('column', '?')}"
            print(f"  note: {note['message']} ({where})", file=sys.stderr)


def _print_trace(payload: dict[str, object]) -> None:
    spans = payload["trace"]
    if not spans:
        return
    order = ("parse", "infer", "unify", "sat", "gc", "total")
    rendered = " ".join(
        f"{phase}={spans[phase] * 1000:.1f}ms"
        for phase in order
        if phase in spans
    )
    print(f"trace: {payload['file']}: {rendered}", file=sys.stderr)


def cmd_check(args: argparse.Namespace) -> int:
    files = _collect_check_files(args.paths)
    if files is None:
        return EXIT_USAGE
    if not files:
        print("error: no module files to check", file=sys.stderr)
        return EXIT_USAGE
    options = FlowOptions(
        track_fields=not args.no_fields,
        gc=not args.no_gc,
    )
    budget_spec = _budget_params_from_args(args)
    store_dir = _resolve_store_dir(args)
    if args.server:
        from .server.client import check_files_via_server

        if store_dir:
            # The daemon owns its store (``serve --store``); a client-side
            # directory would be consulted in the wrong process.
            print("note: --server ignores --store; pass it to "
                  "`rowpoly serve` instead", file=sys.stderr)

        try:
            payloads = check_files_via_server(
                args.server,
                files,
                engine=args.engine,
                options=options,
                read_program=_read_program,
                retries=args.retries,
                retry_seed=args.retry_seed,
                budget=budget_spec,
            )
        except (OSError, ValueError) as error:
            print(f"error: cannot reach server {args.server}: {error}",
                  file=sys.stderr)
            return EXIT_USAGE
    elif args.jobs > 1 and len(files) > 1:
        from concurrent.futures import ProcessPoolExecutor

        from .server.shard import spawn_context

        items = [
            (path, args.engine, options, budget_spec, store_dir)
            for path in files
        ]
        # Pinned "spawn" start method (same as the sharded daemon): the
        # platform default ``fork`` would clone any importing process's
        # threads and locks, and differs across OSes and Python versions.
        with ProcessPoolExecutor(
            max_workers=args.jobs, mp_context=spawn_context()
        ) as pool:
            # ``map`` preserves input order, so every downstream artefact
            # (JSON, diagnostics, exit code) is independent of scheduling.
            payloads = list(pool.map(_check_one_file, items))
    else:
        payloads = [
            _check_one_file(
                (path, args.engine, options, budget_spec, store_dir)
            )
            for path in files
        ]
    exit_code = EXIT_OK
    for payload in payloads:
        exit_code = max(exit_code, payload["exit"])
        if args.trace:
            _print_trace(payload)
        report = payload["report"]
        if report["ok"] or args.json:
            continue
        if "decls" not in report:  # file-level parse/read failure
            print(f"{payload['file']}: {report['error']}"
                  f"{_code_suffix(report)}: {report['message']}",
                  file=sys.stderr)
            continue
        for decl in report["decls"]:
            if decl["status"] == "ok":
                continue
            print(
                f"{payload['file']}:{decl['line']}:{decl['column']}: "
                f"{decl['decl']}: {decl['error']}{_code_suffix(decl)}: "
                f"{decl['message']}",
                file=sys.stderr,
            )
            _print_payload_diagnostics(decl)
    if args.json:
        print(json.dumps([p["report"] for p in payloads],
                         indent=2, sort_keys=True))
    else:
        for payload in payloads:
            report = payload["report"]
            if report["ok"]:
                count = len(report["decls"])
                print(f"{payload['file']}: ok ({count} declarations)")
            else:
                failed = sum(
                    1
                    for decl in report.get("decls", [])
                    if decl["status"] != "ok"
                ) or 1
                print(f"{payload['file']}: FAILED ({failed} errors)")
    if args.solver_stats:
        _print_check_solver_stats(payloads, args)
    return exit_code


def _print_check_solver_stats(
    payloads: list[dict[str, object]], args: argparse.Namespace
) -> None:
    """The batch-wide SolverStats rollup (parity with ``infer``'s flag).

    Goes to stdout like ``rowpoly infer --solver-stats``, except under
    ``--json``, where stdout is the deterministic report array and the
    rollup moves to stderr.
    """
    if args.server:
        print(
            "note: --server keeps solver telemetry on the daemon; "
            f"query it with: rowpoly client {args.server} stats",
            file=sys.stderr,
        )
        return
    rollup = SolverStats.merged(p["solver_stats"] for p in payloads)
    text = json.dumps(rollup.as_dict(), indent=2, sort_keys=True)
    print(text, file=sys.stderr if args.json else sys.stdout)


# ---------------------------------------------------------------------------
# serve / client: the persistent inference daemon
# ---------------------------------------------------------------------------
def cmd_serve(args: argparse.Namespace) -> int:
    import signal

    if args.shards > 0:
        from .server.router import Router, RouterConfig

        # The router stays fault-free on purpose: ROWPOLY_FAULTS reaches
        # the *shards* through their spawned environment, so chaos
        # harnesses break workers, never the routing plane.
        server = Router(
            RouterConfig(
                shards=args.shards,
                engine=args.engine,
                workers=args.workers,
                queue_limit=args.queue_limit,
                sessions=args.sessions,
                deadline_ms=args.deadline_ms,
                track_fields=not args.no_fields,
                gc=not args.no_gc,
                budget_ms=args.budget_ms,
                budget_solver_steps=args.budget_solver_steps,
                budget_max_clauses=args.budget_max_clauses,
                budget_core_queries=args.budget_core_queries,
                quarantine_threshold=args.quarantine_threshold,
                quarantine_ttl=args.quarantine_ttl,
                hang_seconds=args.hang_seconds,
                shard_hang_seconds=args.shard_hang_seconds,
                store_dir=_resolve_store_dir(args),
                probe_interval=args.probe_interval,
                breaker_failures=args.breaker_failures,
                breaker_latency_ms=args.breaker_latency_ms,
                breaker_recovery_seconds=args.breaker_recovery_seconds,
                shed=args.shed,
                brownout_threshold=args.brownout_threshold,
                brownout_window=args.brownout_window,
                brownout_exit_ratio=args.brownout_exit_ratio,
                brownout_budget_ms=args.brownout_budget_ms,
            )
        )
        drain_timeout = server.config.drain_timeout
        render_text = server.render_text
        snapshot = server.stats_snapshot
    else:
        from .server import Daemon, DaemonConfig
        from .testing.faults import install_from_env

        # Chaos harnesses inject faults into subprocess daemons through
        # the environment (ROWPOLY_FAULTS); a no-op without it.
        install_from_env(os.environ)

        server = Daemon(
            DaemonConfig(
                engine=args.engine,
                workers=args.workers,
                queue_limit=args.queue_limit,
                sessions=args.sessions,
                deadline_ms=args.deadline_ms,
                track_fields=not args.no_fields,
                gc=not args.no_gc,
                budget_ms=args.budget_ms,
                budget_solver_steps=args.budget_solver_steps,
                budget_max_clauses=args.budget_max_clauses,
                budget_core_queries=args.budget_core_queries,
                quarantine_threshold=args.quarantine_threshold,
                quarantine_ttl=args.quarantine_ttl,
                hang_seconds=args.hang_seconds,
                store_dir=_resolve_store_dir(args),
                shed=args.shed,
                brownout_threshold=args.brownout_threshold,
                brownout_window=args.brownout_window,
                brownout_exit_ratio=args.brownout_exit_ratio,
                brownout_budget_ms=args.brownout_budget_ms,
            )
        )
        drain_timeout = server.config.drain_timeout
        render_text = server.metrics.render_text
        snapshot = server.metrics.snapshot

    def on_signal(signum, frame):  # SIGTERM/SIGINT: graceful drain
        server.request_shutdown()
        server.wait_drained(drain_timeout + 5.0)
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, on_signal)
    signal.signal(signal.SIGINT, on_signal)
    try:
        if args.tcp:
            host, _, port_text = args.tcp.rpartition(":")
            host = host or "127.0.0.1"
            try:
                port = int(port_text)
            except ValueError:
                print(f"error: bad --tcp address {args.tcp!r} "
                      f"(expected HOST:PORT)", file=sys.stderr)
                return EXIT_USAGE
            # Bind before announcing so `--tcp HOST:0` prints the real port.
            bound = server.serve_tcp(host, port, background=True)
            print(f"rowpoly serve: listening on {bound[0]}:{bound[1]}",
                  file=sys.stderr, flush=True)
            # Poll so SIGTERM/SIGINT are serviced promptly on every
            # platform while the acceptor thread does the work.
            while not server.drained.wait(1.0):
                pass
        else:
            server.serve_stdio()
    finally:
        server.request_shutdown()
        server.wait_drained(drain_timeout + 5.0)
        print(render_text(), file=sys.stderr)
        if args.metrics_dump:
            with open(args.metrics_dump, "w") as handle:
                json.dump(snapshot(), handle, indent=2, sort_keys=True)
                handle.write("\n")
    return EXIT_OK


def cmd_client(args: argparse.Namespace) -> int:
    from .server.client import ServeClient

    try:
        params = json.loads(args.params) if args.params else {}
    except ValueError as error:
        print(f"error: --params is not valid JSON: {error}", file=sys.stderr)
        return EXIT_USAGE
    if not isinstance(params, dict):
        print("error: --params must be a JSON object", file=sys.stderr)
        return EXIT_USAGE
    try:
        with ServeClient(args.address, timeout=args.timeout) as client:
            response = client.call(args.method, params)
    except (OSError, ValueError) as error:
        print(f"error: cannot reach server {args.address}: {error}",
              file=sys.stderr)
        return EXIT_USAGE
    print(json.dumps(response, indent=2, sort_keys=True))
    return EXIT_OK if "result" in response else EXIT_ILL_TYPED


# ---------------------------------------------------------------------------
# cache: administer the persistent result store
# ---------------------------------------------------------------------------
def cmd_cache(args: argparse.Namespace) -> int:
    """``rowpoly cache {stats,gc,verify,clear}`` on a store directory.

    Operates on the disk layer directly (no memory cache in front): the
    point is to observe and mutate what other processes will see.  Every
    action prints its result as key-sorted JSON on stdout.
    """
    from .store import DiskStore

    root = _resolve_store_dir(args)
    if not root:
        print("error: no store directory (use --store DIR or set "
              "ROWPOLY_STORE)", file=sys.stderr)
        return EXIT_USAGE
    try:
        store = DiskStore(root)
        if args.cache_command == "stats":
            result = store.stats()
        elif args.cache_command == "gc":
            result = store.gc(args.max_bytes)
        elif args.cache_command == "verify":
            result = store.verify()
        else:  # clear
            result = store.clear()
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    print(json.dumps(result, indent=2, sort_keys=True))
    if args.cache_command == "verify" and result.get("corrupt"):
        return EXIT_ILL_TYPED
    return EXIT_OK


# ---------------------------------------------------------------------------
# audit: corpus-scale auditing with a deterministic evidence store
# ---------------------------------------------------------------------------
def cmd_audit_run(args: argparse.Namespace) -> int:
    from .audit import DiscoveryError, run_audit, render_report, save_findings
    from .server.metrics import ServerMetrics

    options = FlowOptions(
        track_fields=not args.no_fields,
        gc=not args.no_gc,
    )
    store_dir = _resolve_store_dir(args)
    if args.server and store_dir:
        print("note: --server ignores --store; pass it to "
              "`rowpoly serve` instead", file=sys.stderr)
        store_dir = None
    metrics = ServerMetrics()
    try:
        result = run_audit(
            args.paths,
            engine=args.engine,
            options=options,
            budget_spec=_budget_params_from_args(args),
            store_dir=store_dir,
            jobs=args.jobs,
            server=args.server,
            shards=args.shards,
            retries=args.retries,
            retry_seed=args.retry_seed,
            metrics=metrics,
        )
    except DiscoveryError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    if args.out:
        save_findings(args.out, result.document)
        print(f"audit: wrote findings to {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(result.document, indent=2, sort_keys=True))
    else:
        print(render_report(result.document))
    if args.metrics_dump:
        snapshot = metrics.snapshot()
        # Shard utilization is a property of this run's plan, not a
        # counter; it rides along in the audit section of the dump.
        snapshot["audit"]["shard_sizes"] = result.plan.shard_sizes()
        with open(args.metrics_dump, "w") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return result.exit


def cmd_audit_report(args: argparse.Namespace) -> int:
    from .audit import (
        FindingsError,
        load_findings,
        render_report,
        report_summary,
    )

    try:
        document = load_findings(args.findings)
    except FindingsError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    if args.json:
        print(json.dumps(report_summary(document), indent=2,
                         sort_keys=True))
    else:
        print(render_report(document))
    return EXIT_OK


def cmd_audit_diff(args: argparse.Namespace) -> int:
    from .audit import (
        FindingsError,
        diff_documents,
        load_findings,
        render_diff,
    )

    try:
        baseline = load_findings(args.baseline)
        current = load_findings(args.current)
    except FindingsError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    result = diff_documents(baseline, current)
    if args.json:
        print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
    else:
        print(render_diff(result))
    if args.metrics_dump:
        from .server.metrics import ServerMetrics

        metrics = ServerMetrics()
        metrics.record_audit_event("findings_new", len(result.new))
        metrics.record_audit_event(
            "findings_resolved", len(result.resolved)
        )
        metrics.record_audit_event(
            "findings_persisting", len(result.persisting)
        )
        with open(args.metrics_dump, "w") as handle:
            json.dump(metrics.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return result.exit_code


def cmd_eval(args: argparse.Namespace) -> int:
    try:
        source = _read_program(args.file)
        expr = run_deep(lambda: parse(source))
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    except (ParseError, LexError) as error:
        print(f"parse error: {error}", file=sys.stderr)
        return EXIT_USAGE
    try:
        value = run_deep(lambda: evaluate(expr, max_steps=args.max_steps))
    except Omega as error:
        print(f"runtime error (Ω): {error}", file=sys.stderr)
        return EXIT_ILL_TYPED
    print(repr(value))
    return EXIT_OK


def cmd_engines(args: argparse.Namespace) -> int:
    if args.json:
        import json

        print(json.dumps({"engines": REGISTRY.as_dicts()},
                         indent=2, sort_keys=True))
        return EXIT_OK
    for info in (REGISTRY.info(name) for name in REGISTRY.names()):
        caps = ", ".join(sorted(info.capabilities))
        print(f"{info.name:<13} [{caps}]")
        print(f"    {info.description}")
    return EXIT_OK


def cmd_generate(args: argparse.Namespace) -> int:
    if args.corpus_dir:
        from .gdsl import CorpusConfig, generate_corpus, write_corpus
        if args.dynamic_records:
            from .gdsl import DynRecConfig, generate_dynrec_corpus

            corpus = generate_dynrec_corpus(
                DynRecConfig(modules=args.modules, seed=args.seed)
            )
            paths = write_corpus(corpus, args.corpus_dir)
            print(
                f"generate: wrote {len(paths)} dynamic-record modules "
                f"to {args.corpus_dir}",
                file=sys.stderr,
            )
            return 0

        corpus = generate_corpus(
            CorpusConfig(
                modules=args.modules,
                seed=args.seed,
                error_rate=args.error_rate,
            )
        )
        paths = write_corpus(corpus, args.corpus_dir)
        print(
            f"generate: wrote {len(paths)} modules "
            f"({len(corpus.injected_modules)} with injected errors) "
            f"to {args.corpus_dir}",
            file=sys.stderr,
        )
        return 0
    program = generate_decoder(
        GeneratorConfig(
            target_lines=args.lines,
            with_semantics=args.semantics,
            seed=args.seed,
        )
    )
    print(program.source, end="")
    return 0


def touch_decl(module, name: str):
    """A fingerprint-changing, signature-preserving edit of one declaration.

    Wraps the body in ``let __edit = 0 in body``: the pretty-printed form
    (hence the fingerprint) changes, the inferred scheme does not — the
    single-declaration-edit replay the incremental benchmark drives.
    """
    decl = module[name]
    return module.with_decl(
        name, Let("__edit", IntLit(0), decl.expr, span=decl.span)
    )


def cmd_bench_fig9(args: argparse.Namespace) -> int:
    print(f"Fig. 9 — inference times (scale={args.scale})")
    header = (
        f"{'decoder':<18} {'lines':>6} {'decls':>6} {'w/o fields':>11} "
        f"{'w. fields':>10} {'recheck':>8} {'ratio':>6} {'paper ratio':>11}"
    )
    print(header)
    print("-" * len(header))
    for spec in FIG9_CORPORA:
        program = build_corpus(spec, scale=args.scale, seed=args.seed)
        module = run_deep(lambda: parse_module(program.source))
        start = time.perf_counter()
        run_deep(
            lambda: InferSession(
                "flow", FlowOptions(track_fields=False)
            ).check(module)
        )
        without = time.perf_counter() - start
        session = InferSession("flow")
        start = time.perf_counter()
        run_deep(lambda: session.check(module))
        with_fields = time.perf_counter() - start
        # Single-declaration-edit replay: touch the first declaration
        # (the one with the most dependents) and re-check incrementally.
        edited = touch_decl(module, module.names()[0])
        start = time.perf_counter()
        run_deep(lambda: session.recheck(edited))
        recheck = time.perf_counter() - start
        paper_ratio = (
            spec.paper_seconds_with_fields / spec.paper_seconds_without_fields
        )
        print(
            f"{spec.name:<18} {program.lines:>6} {len(module):>6} "
            f"{without:>10.2f}s {with_fields:>9.2f}s {recheck:>7.2f}s "
            f"{with_fields / max(without, 1e-9):>6.2f} "
            f"{paper_ratio:>11.2f}"
        )
    return 0


def _add_budget_arguments(
    parser: argparse.ArgumentParser, server: bool = False
) -> None:
    """The shared ``--budget-*`` resource-ceiling flags.

    On ``check`` they bound each file's inference (exceeding a ceiling
    aborts the offending declarations with RP0998 and exit code 3); on
    ``serve`` they set the daemon-wide default that per-request budgets
    may override.
    """
    scope = "default per-request" if server else "per-file"
    parser.add_argument(
        "--budget-ms", type=float, default=None, metavar="MS",
        help=f"{scope} wall-clock budget; declarations that exceed it "
        "are aborted with RP0998 (partial report, not a failure)",
    )
    parser.add_argument(
        "--budget-solver-steps", type=int, default=None, metavar="N",
        help=f"{scope} ceiling on solver steps (CDCL conflicts and "
        "linear-engine queries)",
    )
    parser.add_argument(
        "--budget-max-clauses", type=int, default=None, metavar="N",
        help=f"{scope} ceiling on the flow formula's clause count",
    )
    parser.add_argument(
        "--budget-core-queries", type=int, default=None, metavar="N",
        help=f"{scope} ceiling on unsat-core minimisation queries",
    )


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rowpoly",
        description=(
            "Optimal inference of fields in row-polymorphic records "
            "(Simon, PLDI 2014) — reproduction"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_infer = sub.add_parser("infer", help="type-check a program")
    p_infer.add_argument("file", help="program file ('-' for stdin)")
    p_infer.add_argument(
        "--engine",
        choices=sorted(REGISTRY.expression_names()),
        default="flow",
        help="inference engine (default: the paper's flow inference)",
    )
    p_infer.add_argument(
        "--no-fields", action="store_true",
        help="disable field tracking (Fig. 9 'w/o fields' mode)",
    )
    p_infer.add_argument(
        "--no-gc", action="store_true",
        help="disable stale-flag garbage collection (Sect. 6 bug mode)",
    )
    p_infer.add_argument(
        "--lazy-fields", action="store_true",
        help="Pottier-style lazy field types via conditional constraints",
    )
    p_infer.add_argument(
        "--when-conditional", action="store_true",
        help="type-changing `when` (Fig. 8, second rule)",
    )
    p_infer.add_argument(
        "--symcat-must", action="store_true",
        help="strict must-analysis for symmetric concatenation",
    )
    p_infer.add_argument("--stats", action="store_true", help="print stats")
    p_infer.add_argument(
        "--solver-stats", action="store_true",
        help="print the SatEngine telemetry (dispatch class, conflicts, "
        "propagations, cache hits, ...) as JSON",
    )
    p_infer.add_argument(
        "--show-flow", action="store_true",
        help="print the signature with its projected flow formula",
    )
    p_infer.set_defaults(handler=cmd_infer)

    p_check = sub.add_parser(
        "check",
        help="batch-check module files (per-declaration sessions)",
    )
    p_check.add_argument(
        "paths", nargs="+", metavar="PATH",
        help=f"module files, or directories searched for *{MODULE_SUFFIX}",
    )
    p_check.add_argument(
        "--engine",
        choices=sorted(REGISTRY.session_names()),
        default="flow",
        help="inference engine (default: the paper's flow inference)",
    )
    p_check.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="check files on N worker processes (output is independent "
        "of N)",
    )
    p_check.add_argument(
        "--json", action="store_true",
        help="print per-declaration results as JSON on stdout "
        "(deterministic: no timings)",
    )
    p_check.add_argument(
        "--trace", action="store_true",
        help="print per-file phase timings (parse/infer/unify/sat/gc) "
        "on stderr",
    )
    p_check.add_argument(
        "--no-fields", action="store_true",
        help="disable field tracking (Fig. 9 'w/o fields' mode)",
    )
    p_check.add_argument(
        "--no-gc", action="store_true",
        help="disable stale-flag garbage collection",
    )
    p_check.add_argument(
        "--server", metavar="ADDR", default=None,
        help="route the batch through a running `rowpoly serve` daemon at "
        "HOST:PORT (output is byte-identical to the offline run)",
    )
    p_check.add_argument(
        "--solver-stats", action="store_true",
        help="print the batch-wide SolverStats rollup as JSON (stdout; "
        "stderr under --json so the report array stays deterministic)",
    )
    p_check.add_argument(
        "--retries", type=int, default=4, metavar="N",
        help="with --server: retry retryable-unavailable answers "
        "(backpressure, quarantine, worker crash) and connection "
        "failures up to N times per file (default: 4)",
    )
    p_check.add_argument(
        "--retry-seed", type=int, default=0, metavar="SEED",
        help="with --server: seed for the retry backoff jitter "
        "(default: 0)",
    )
    p_check.add_argument(
        "--store", metavar="DIR", default=None,
        help="persistent content-addressed result store: serve cached "
        "reports from DIR and persist new ones (default: $ROWPOLY_STORE "
        "if set; cached output is byte-identical to a fresh run)",
    )
    _add_budget_arguments(p_check)
    p_check.set_defaults(handler=cmd_check)

    p_serve = sub.add_parser(
        "serve",
        help="run the persistent inference daemon (JSON-RPC over "
        "stdio, or TCP with --tcp)",
    )
    p_serve.add_argument(
        "--tcp", metavar="HOST:PORT", default=None,
        help="listen on TCP instead of stdio (use port 0 for an "
        "ephemeral port; the bound address is printed on stderr)",
    )
    p_serve.add_argument(
        "--engine",
        choices=sorted(REGISTRY.session_names()),
        default="flow",
        help="default inference engine (requests may override)",
    )
    p_serve.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="run N shard worker processes behind a session-affinity "
        "router (shared-nothing; each shard is a full daemon with "
        "--workers threads); 0 = single-process daemon (default: 0)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker threads serving check requests — per shard when "
        "--shards is set (default: 2)",
    )
    p_serve.add_argument(
        "--queue-limit", type=int, default=16, metavar="N",
        help="bounded request queue; beyond it requests are rejected "
        "with an 'overloaded' error (default: 16)",
    )
    p_serve.add_argument(
        "--sessions", type=int, default=32, metavar="N",
        help="LRU capacity of the warm-session registry (default: 32)",
    )
    p_serve.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="default per-request wall-clock deadline "
        "(default: unbounded; requests may override)",
    )
    p_serve.add_argument(
        "--no-fields", action="store_true",
        help="default to field tracking off",
    )
    p_serve.add_argument(
        "--no-gc", action="store_true",
        help="default to stale-flag garbage collection off",
    )
    p_serve.add_argument(
        "--metrics-dump", metavar="PATH", default=None,
        help="also write the final metrics snapshot as JSON to PATH "
        "at shutdown (the text dump always goes to stderr)",
    )
    _add_budget_arguments(p_serve, server=True)
    p_serve.add_argument(
        "--quarantine-threshold", type=int, default=3, metavar="N",
        help="quarantine a session after N crash/budget strikes without "
        "an intervening success; 0 disables quarantine (default: 3)",
    )
    p_serve.add_argument(
        "--quarantine-ttl", type=float, default=30.0, metavar="SECONDS",
        help="how long a quarantined session refuses requests before its "
        "strikes reset (default: 30)",
    )
    p_serve.add_argument(
        "--hang-seconds", type=float, default=None, metavar="SECONDS",
        help="watchdog: cancel any request served for longer than this "
        "(default: no hang watchdog)",
    )
    p_serve.add_argument(
        "--shard-hang-seconds", type=float, default=None,
        metavar="SECONDS",
        help="with --shards: kill and respawn a shard process whose "
        "forwarded request goes unanswered this long (default: no "
        "process watchdog)",
    )
    p_serve.add_argument(
        "--store", metavar="DIR", default=None,
        help="persistent content-addressed result store shared by the "
        "daemon — and by every shard under --shards (default: "
        "$ROWPOLY_STORE if set)",
    )
    p_serve.add_argument(
        "--probe-interval", type=float, default=0.0, metavar="SECONDS",
        help="with --shards: router health-probe period; each shard gets "
        "a circuit breaker fed by probe latency and queue depth "
        "(default: 0 = probing and breakers off)",
    )
    p_serve.add_argument(
        "--breaker-failures", type=int, default=3, metavar="N",
        help="consecutive failed/slow probes that open a shard's "
        "breaker, removing it from routing until recovery (default: 3)",
    )
    p_serve.add_argument(
        "--breaker-latency-ms", type=float, default=250.0, metavar="MS",
        help="probe round trips slower than this count as breaker "
        "strikes (default: 250)",
    )
    p_serve.add_argument(
        "--breaker-recovery-seconds", type=float, default=5.0,
        metavar="SECONDS",
        help="how long an open breaker waits before a half-open trial "
        "probe may re-close it (default: 5)",
    )
    p_serve.add_argument(
        "--shed", action="store_true",
        help="deadline-aware load shedding: refuse at admission (a "
        "retryable 429 with a computed retry_after_ms) any request "
        "whose remaining deadline is below the predicted queue wait "
        "plus service time",
    )
    p_serve.add_argument(
        "--brownout-threshold", type=float, default=None,
        metavar="PRESSURE",
        help="brownout mode: when queue pressure (occupancy x EWMA "
        "service ms) stays above this, serve degraded partial answers "
        "under a tightened budget instead of queueing toward timeouts "
        "(default: off)",
    )
    p_serve.add_argument(
        "--brownout-window", type=float, default=1.0, metavar="SECONDS",
        help="pressure must stay over/under threshold this long to "
        "enter/exit brownout (hysteresis; default: 1)",
    )
    p_serve.add_argument(
        "--brownout-exit-ratio", type=float, default=0.5, metavar="R",
        help="brownout exits once pressure stays below threshold*R for "
        "a window (default: 0.5)",
    )
    p_serve.add_argument(
        "--brownout-budget-ms", type=float, default=500.0, metavar="MS",
        help="per-request wall budget imposed while browned out "
        "(default: 500)",
    )
    p_serve.set_defaults(handler=cmd_serve)

    p_cache = sub.add_parser(
        "cache",
        help="administer a persistent result store directory",
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    cache_help = (
        "store directory (default: $ROWPOLY_STORE if set)"
    )
    p_cache_stats = cache_sub.add_parser(
        "stats", help="print entry/byte/counter statistics as JSON"
    )
    p_cache_stats.add_argument("--store", metavar="DIR", default=None,
                               help=cache_help)
    p_cache_gc = cache_sub.add_parser(
        "gc",
        help="evict oldest entries until the store fits under a byte "
        "budget (advisory-locked against concurrent gc)",
    )
    p_cache_gc.add_argument("--store", metavar="DIR", default=None,
                            help=cache_help)
    p_cache_gc.add_argument(
        "--max-bytes", type=int, required=True, metavar="N",
        help="target size: evict least-recently-written entries until "
        "the object payloads total at most N bytes",
    )
    p_cache_verify = cache_sub.add_parser(
        "verify",
        help="re-validate every entry's self-check; quarantine corrupt "
        "ones (exit 1 if any were found)",
    )
    p_cache_verify.add_argument("--store", metavar="DIR", default=None,
                                help=cache_help)
    p_cache_clear = cache_sub.add_parser(
        "clear", help="remove all entries (and quarantined files)"
    )
    p_cache_clear.add_argument("--store", metavar="DIR", default=None,
                               help=cache_help)
    p_cache.set_defaults(handler=cmd_cache)

    p_audit = sub.add_parser(
        "audit",
        help="corpus-scale audit pipeline with a deterministic evidence "
        "store (run / report / diff)",
    )
    audit_sub = p_audit.add_subparsers(dest="audit_command", required=True)

    p_audit_run = audit_sub.add_parser(
        "run",
        help="discover, check and judge a corpus into a findings "
        "document (deterministic: byte-identical across re-runs, "
        "--jobs counts and --server fleets)",
    )
    p_audit_run.add_argument(
        "paths", nargs="+", metavar="PATH",
        help=f"corpus roots: module files, or directories searched for "
        f"*{MODULE_SUFFIX}",
    )
    p_audit_run.add_argument(
        "--engine",
        choices=sorted(REGISTRY.session_names()),
        default="flow",
        help="inference engine (default: the paper's flow inference)",
    )
    p_audit_run.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="audit modules on N worker processes (output is "
        "independent of N)",
    )
    p_audit_run.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="content-derived shard count for the plan; with --server "
        "also the number of concurrent daemon connections (default: 1)",
    )
    p_audit_run.add_argument(
        "--server", metavar="ADDR", default=None,
        help="fan the corpus across a running `rowpoly serve` daemon or "
        "sharded router at HOST:PORT (findings are byte-identical to "
        "the offline run)",
    )
    p_audit_run.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the findings document to PATH under a self-"
        "verifying envelope (the `audit report`/`audit diff` input)",
    )
    p_audit_run.add_argument(
        "--json", action="store_true",
        help="print the findings document as JSON on stdout",
    )
    p_audit_run.add_argument(
        "--no-fields", action="store_true",
        help="disable field tracking (Fig. 9 'w/o fields' mode)",
    )
    p_audit_run.add_argument(
        "--no-gc", action="store_true",
        help="disable stale-flag garbage collection",
    )
    p_audit_run.add_argument(
        "--retries", type=int, default=4, metavar="N",
        help="with --server: retry retryable-unavailable answers up to "
        "N times per module (default: 4)",
    )
    p_audit_run.add_argument(
        "--retry-seed", type=int, default=0, metavar="SEED",
        help="with --server: seed for the retry backoff jitter "
        "(default: 0)",
    )
    p_audit_run.add_argument(
        "--store", metavar="DIR", default=None,
        help="persistent content-addressed result store: a store-warm "
        "re-audit re-solves nothing (default: $ROWPOLY_STORE if set)",
    )
    p_audit_run.add_argument(
        "--metrics-dump", metavar="PATH", default=None,
        help="write the run's metrics snapshot (modules audited, "
        "findings, store traffic, shard utilization) as JSON to PATH",
    )
    _add_budget_arguments(p_audit_run)
    p_audit_run.set_defaults(handler=cmd_audit_run)

    p_audit_report = audit_sub.add_parser(
        "report",
        help="per-code / per-module triage summary of a findings "
        "document",
    )
    p_audit_report.add_argument(
        "--findings", metavar="PATH", required=True,
        help="findings document written by `audit run --out`",
    )
    p_audit_report.add_argument(
        "--json", action="store_true",
        help="print the summary as JSON on stdout",
    )
    p_audit_report.set_defaults(handler=cmd_audit_report)

    p_audit_diff = audit_sub.add_parser(
        "diff",
        help="compare findings documents by stable finding ID "
        "(exit 1 when anything is new — the CI gate)",
    )
    p_audit_diff.add_argument(
        "--baseline", metavar="PATH", required=True,
        help="the baseline findings document",
    )
    p_audit_diff.add_argument(
        "current", metavar="PATH",
        help="the current findings document",
    )
    p_audit_diff.add_argument(
        "--json", action="store_true",
        help="print the delta (new/resolved/persisting) as JSON",
    )
    p_audit_diff.add_argument(
        "--metrics-dump", metavar="PATH", default=None,
        help="write the delta's audit counters as a metrics snapshot "
        "to PATH",
    )
    p_audit_diff.set_defaults(handler=cmd_audit_diff)

    p_client = sub.add_parser(
        "client",
        help="one raw JSON-RPC call against a running daemon",
    )
    p_client.add_argument("address", metavar="ADDR", help="daemon HOST:PORT")
    p_client.add_argument(
        "method", metavar="METHOD",
        help="RPC method (check, stats, ping, cancel, shutdown)",
    )
    p_client.add_argument(
        "--params", metavar="JSON", default=None,
        help="request params as a JSON object",
    )
    p_client.add_argument(
        "--timeout", type=float, default=30.0, metavar="SECONDS",
        help="socket timeout (default: 30)",
    )
    p_client.set_defaults(handler=cmd_client)

    p_eval = sub.add_parser("eval", help="run a program")
    p_eval.add_argument("file", help="program file ('-' for stdin)")
    p_eval.add_argument("--max-steps", type=int, default=1_000_000)
    p_eval.set_defaults(handler=cmd_eval)

    p_gen = sub.add_parser(
        "generate",
        help="emit a synthetic decoder spec, or a multi-module corpus "
        "with --corpus-dir",
    )
    p_gen.add_argument("--lines", type=int, default=1468)
    p_gen.add_argument("--semantics", action="store_true")
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument(
        "--corpus-dir", metavar="DIR", default=None,
        help="instead of one decoder on stdout, write a seeded multi-"
        "module corpus (*.rp files) into DIR — the audit pipeline's "
        "test workload",
    )
    p_gen.add_argument(
        "--modules", type=int, default=100, metavar="N",
        help="with --corpus-dir: number of modules (default: 100)",
    )
    p_gen.add_argument(
        "--error-rate", type=float, default=0.0, metavar="R",
        help="with --corpus-dir: probability of an injected type error "
        "per module (default: 0)",
    )
    p_gen.add_argument(
        "--dynamic-records", action="store_true",
        help="with --corpus-dir: emit dynamic-record modules (union-"
        "typed joins) that only the setrows engine accepts",
    )
    p_gen.set_defaults(handler=cmd_generate)

    p_engines = sub.add_parser(
        "engines",
        help="list the registered inference engines and their "
        "capabilities",
    )
    p_engines.add_argument(
        "--json", action="store_true",
        help="machine-readable listing (name, description, capabilities)",
    )
    p_engines.set_defaults(handler=cmd_engines)

    p_bench = sub.add_parser("bench", help="run a benchmark")
    bench_sub = p_bench.add_subparsers(dest="bench", required=True)
    p_fig9 = bench_sub.add_parser("fig9", help="the Fig. 9 timing table")
    p_fig9.add_argument(
        "--scale", type=float, default=0.25,
        help="corpus size multiplier (1.0 = the paper's line counts)",
    )
    p_fig9.add_argument("--seed", type=int, default=0)
    p_fig9.set_defaults(handler=cmd_bench_fig9)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
