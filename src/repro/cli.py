"""Command-line interface: ``rowpoly`` / ``python -m repro``.

Subcommands:

* ``infer FILE``     — type-check a program with a chosen engine,
* ``eval FILE``      — run a program under the concrete semantics,
* ``bench fig9``     — regenerate the Fig. 9 table,
* ``generate``       — emit a synthetic decoder specification.
"""

from __future__ import annotations

import argparse
import sys
import time

from .gdsl import FIG9_CORPORA, GeneratorConfig, build_corpus, generate_decoder
from .infer import FlowOptions, InferenceError, infer_flow
from .infer.hm import infer_damas_milner, infer_mycroft
from .infer.remy import infer_remy
from .lang import parse
from .semantics import Omega, evaluate
from .types.project import strip
from .util import run_deep

ENGINES = {
    "flow": None,  # handled specially (options)
    "mycroft": infer_mycroft,
    "damas-milner": infer_damas_milner,
    "remy": infer_remy,
}


def _read_program(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def cmd_infer(args: argparse.Namespace) -> int:
    source = _read_program(args.file)
    expr = run_deep(lambda: parse(source))
    try:
        if args.engine == "flow":
            options = FlowOptions(
                track_fields=not args.no_fields,
                gc=not args.no_gc,
                lazy_fields=args.lazy_fields,
                when_conditional=args.when_conditional,
                symcat_must=args.symcat_must,
            )
            result = run_deep(lambda: infer_flow(expr, options))
            print(f"type    : {strip(result.type)!r}")
            print(f"flagged : {result.type!r}")
            print(f"clauses : {len(result.beta)} ({result.formula_class.value})")
            if args.show_flow:
                from .infer.signatures import signature

                sig = signature(result)
                print(f"signature: {sig.type_text}")
                if sig.flow_text:
                    print(f"    where {sig.flow_text}")
            if args.stats:
                for key, value in result.stats.as_dict().items():
                    print(f"  {key}: {value}")
            if args.solver_stats:
                import json

                stats = (
                    result.solver_stats.as_dict()
                    if result.solver_stats is not None
                    else {}
                )
                print(json.dumps(stats, indent=2, sort_keys=True))
        else:
            result = run_deep(lambda: ENGINES[args.engine](expr))
            print(f"type    : {result.type!r}")
    except InferenceError as error:
        print(f"type error: {error}", file=sys.stderr)
        return 1
    return 0


def cmd_eval(args: argparse.Namespace) -> int:
    source = _read_program(args.file)
    expr = run_deep(lambda: parse(source))
    try:
        value = run_deep(lambda: evaluate(expr, max_steps=args.max_steps))
    except Omega as error:
        print(f"runtime error (Ω): {error}", file=sys.stderr)
        return 1
    print(repr(value))
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    program = generate_decoder(
        GeneratorConfig(
            target_lines=args.lines,
            with_semantics=args.semantics,
            seed=args.seed,
        )
    )
    print(program.source, end="")
    return 0


def cmd_bench_fig9(args: argparse.Namespace) -> int:
    print(f"Fig. 9 — inference times (scale={args.scale})")
    header = (
        f"{'decoder':<18} {'lines':>6} {'w/o fields':>11} "
        f"{'w. fields':>10} {'ratio':>6} {'paper ratio':>11}"
    )
    print(header)
    print("-" * len(header))
    for spec in FIG9_CORPORA:
        program = build_corpus(spec, scale=args.scale, seed=args.seed)
        expr = run_deep(lambda: parse(program.source))
        start = time.perf_counter()
        run_deep(
            lambda: infer_flow(expr, FlowOptions(track_fields=False))
        )
        without = time.perf_counter() - start
        start = time.perf_counter()
        run_deep(lambda: infer_flow(expr))
        with_fields = time.perf_counter() - start
        paper_ratio = (
            spec.paper_seconds_with_fields / spec.paper_seconds_without_fields
        )
        print(
            f"{spec.name:<18} {program.lines:>6} {without:>10.2f}s "
            f"{with_fields:>9.2f}s {with_fields / max(without, 1e-9):>6.2f} "
            f"{paper_ratio:>11.2f}"
        )
    return 0


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rowpoly",
        description=(
            "Optimal inference of fields in row-polymorphic records "
            "(Simon, PLDI 2014) — reproduction"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_infer = sub.add_parser("infer", help="type-check a program")
    p_infer.add_argument("file", help="program file ('-' for stdin)")
    p_infer.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default="flow",
        help="inference engine (default: the paper's flow inference)",
    )
    p_infer.add_argument(
        "--no-fields", action="store_true",
        help="disable field tracking (Fig. 9 'w/o fields' mode)",
    )
    p_infer.add_argument(
        "--no-gc", action="store_true",
        help="disable stale-flag garbage collection (Sect. 6 bug mode)",
    )
    p_infer.add_argument(
        "--lazy-fields", action="store_true",
        help="Pottier-style lazy field types via conditional constraints",
    )
    p_infer.add_argument(
        "--when-conditional", action="store_true",
        help="type-changing `when` (Fig. 8, second rule)",
    )
    p_infer.add_argument(
        "--symcat-must", action="store_true",
        help="strict must-analysis for symmetric concatenation",
    )
    p_infer.add_argument("--stats", action="store_true", help="print stats")
    p_infer.add_argument(
        "--solver-stats", action="store_true",
        help="print the SatEngine telemetry (dispatch class, conflicts, "
        "propagations, cache hits, ...) as JSON",
    )
    p_infer.add_argument(
        "--show-flow", action="store_true",
        help="print the signature with its projected flow formula",
    )
    p_infer.set_defaults(handler=cmd_infer)

    p_eval = sub.add_parser("eval", help="run a program")
    p_eval.add_argument("file", help="program file ('-' for stdin)")
    p_eval.add_argument("--max-steps", type=int, default=1_000_000)
    p_eval.set_defaults(handler=cmd_eval)

    p_gen = sub.add_parser("generate", help="emit a synthetic decoder spec")
    p_gen.add_argument("--lines", type=int, default=1468)
    p_gen.add_argument("--semantics", action="store_true")
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.set_defaults(handler=cmd_generate)

    p_bench = sub.add_parser("bench", help="run a benchmark")
    bench_sub = p_bench.add_subparsers(dest="bench", required=True)
    p_fig9 = bench_sub.add_parser("fig9", help="the Fig. 9 timing table")
    p_fig9.add_argument(
        "--scale", type=float, default=0.25,
        help="corpus size multiplier (1.0 = the paper's line counts)",
    )
    p_fig9.add_argument("--seed", type=int, default=0)
    p_fig9.set_defaults(handler=cmd_bench_fig9)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
