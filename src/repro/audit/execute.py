"""Execute: fan the audit plan out and collect stable check payloads.

The middle stage of the pipeline runs every :class:`~repro.audit.
discover.AuditUnit` through the *same* canonical check routine every
other surface uses (:func:`repro.server.service.check_source`), in one
of three modes:

* **in-process** — one throwaway session per module, sharing a single
  persistent-store handle (so the audit's ``store_hits`` are observable
  through the attached metrics hook);
* **local pool** (``jobs > 1``) — a spawned :class:`ProcessPoolExecutor`
  with one store handle per worker process, exactly the ``rowpoly check
  --jobs`` discipline (``map`` preserves input order, so downstream
  artifacts are independent of scheduling);
* **daemon fleet** (``server``) — batch submission through
  :func:`repro.server.client.check_files_batch`, which drives a
  ``rowpoly serve`` daemon (or ``--shards N`` router) with one retrying
  connection per plan shard.

All three produce payloads of the same shape as ``rowpoly check``
(``{"file", "report", "exit", "trace", "solver_stats"}``), in plan
order, with byte-identical stable reports — the existing parity
contract the audit pipeline inherits rather than re-proves.  Results
are keyed by plan position, so the Judge stage can zip units and
payloads without trusting any transport's ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..infer.state import FlowOptions
from ..server.service import check_source
from ..util import Budget
from .discover import AuditPlan


@dataclass(frozen=True)
class ExecuteConfig:
    """Everything the Execute stage needs to know about *how* to run."""

    engine: str = "flow"
    options: Optional[FlowOptions] = None
    #: Wire-shaped budget spec (``Budget.from_params`` input) or None.
    budget_spec: Optional[dict] = None
    #: Persistent result-store directory (``None`` = no store).
    store_dir: Optional[str] = None
    #: Local worker processes (ignored when ``server`` is set).
    jobs: int = 1
    #: ``HOST:PORT`` of a running daemon/router; routes the batch there.
    server: Optional[str] = None
    retries: int = 4
    retry_seed: int = 0


#: Per-process persistent-store handles for the worker pool, keyed by
#: directory (one open per spawned worker, the ``check --jobs`` rule).
_WORKER_STORES: dict[str, object] = {}


def _open_worker_store(store_dir: Optional[str]):
    if store_dir is None:
        return None
    store = _WORKER_STORES.get(store_dir)
    if store is None:
        from ..store import open_store

        store = _WORKER_STORES[store_dir] = open_store(store_dir)
    return store


def _execute_one(
    item: tuple[str, str, str, Optional[FlowOptions], Optional[dict],
                Optional[str]],
) -> dict[str, object]:
    """Check one unit; the picklable unit of work for the pool."""
    path, source, engine, options, budget_spec, store_dir = item
    budget = (
        Budget.from_params(budget_spec) if budget_spec is not None else None
    )
    outcome = check_source(
        path, source, engine=engine, options=options, budget=budget,
        store=_open_worker_store(store_dir),
    )
    return {
        "file": path,
        "report": outcome.report,
        "exit": outcome.exit,
        "trace": outcome.trace,
        "solver_stats": outcome.solver_stats,
    }


def execute(
    plan: AuditPlan,
    config: ExecuteConfig,
    store=None,
) -> list[dict[str, object]]:
    """Run the plan; payloads come back in plan order.

    ``store`` is an already-open cache backend for the in-process path
    (the caller owns it so its metrics hook — and therefore the audit's
    ``store_hits`` — survive the run); the pool and fleet paths manage
    their own handles from ``config.store_dir``.
    """
    if config.server:
        from ..server.client import check_files_batch

        return check_files_batch(
            config.server,
            [(unit.path, unit.source) for unit in plan.units],
            engine=config.engine,
            options=config.options,
            budget=config.budget_spec,
            retries=config.retries,
            retry_seed=config.retry_seed,
            concurrency=max(plan.shards, 1),
        )
    items = [
        (unit.path, unit.source, config.engine, config.options,
         config.budget_spec, config.store_dir)
        for unit in plan.units
    ]
    if config.jobs > 1 and len(items) > 1:
        from concurrent.futures import ProcessPoolExecutor

        from ..server.shard import spawn_context

        with ProcessPoolExecutor(
            max_workers=config.jobs, mp_context=spawn_context()
        ) as pool:
            return list(pool.map(_execute_one, items, chunksize=8))
    if store is None:
        store = _open_worker_store(config.store_dir)
    payloads = []
    for path, source, engine, options, budget_spec, _ in items:
        budget = (
            Budget.from_params(budget_spec)
            if budget_spec is not None
            else None
        )
        outcome = check_source(
            path, source, engine=engine, options=options, budget=budget,
            store=store,
        )
        payloads.append(
            {
                "file": path,
                "report": outcome.report,
                "exit": outcome.exit,
                "trace": outcome.trace,
                "solver_stats": outcome.solver_stats,
            }
        )
    return payloads
