"""`rowpoly audit report`: triage views over a findings document.

Pure functions from a (verified) findings document to the two render
targets: a per-code / per-module summary dict (``--json``) and a plain
text rendering for terminals.  No I/O, no state — the document is the
single source of truth, so anything this module shows is reproducible
from the findings file alone.
"""

from __future__ import annotations

from ..diag import codes


def report_summary(document: dict[str, object]) -> dict[str, object]:
    """The machine-readable triage summary for one findings document."""
    by_code: dict[str, dict[str, int]] = {}
    by_module: dict[str, dict[str, int]] = {}
    for finding in document.get("findings") or ():
        code = str(finding.get("code") or "")
        entry = by_code.setdefault(
            code, {"findings": 0, "occurrences": 0}
        )
        entry["findings"] += 1
        occurrences = finding.get("occurrences") or ()
        entry["occurrences"] += len(occurrences)
        for occurrence in occurrences:
            module = str(occurrence.get("file") or "")
            per = by_module.setdefault(
                module, {"findings": 0, "occurrences": 0}
            )
            per["occurrences"] += 1
        # A finding counts once per module it occurs in.
        for module in {
            str(o.get("file") or "") for o in occurrences
        }:
            by_module[module]["findings"] += 1
    return {
        "engine": document.get("engine"),
        "config_digest": document.get("config_digest"),
        "modules": document.get("modules"),
        "modules_with_findings": document.get("modules_with_findings"),
        "findings": len(document.get("findings") or ()),
        "aborted": len(document.get("aborted") or ()),
        "unreadable": len(document.get("unreadable") or ()),
        "by_code": {
            code: by_code[code] for code in sorted(by_code)
        },
        "by_module": {
            module: by_module[module] for module in sorted(by_module)
        },
    }


def render_report(document: dict[str, object]) -> str:
    """Human-readable triage summary (the non-``--json`` rendering)."""
    summary = report_summary(document)
    lines = [
        "rowpoly audit report",
        f"  engine           {summary['engine']}"
        f"  (config {summary['config_digest']})",
        f"  modules          {summary['modules']}"
        f"  ({summary['modules_with_findings']} with findings)",
        f"  findings         {summary['findings']}",
    ]
    if summary["aborted"]:
        lines.append(f"  aborted decls    {summary['aborted']}")
    if summary["unreadable"]:
        lines.append(f"  unreadable files {summary['unreadable']}")
    if summary["by_code"]:
        lines.append("by code:")
        for code, entry in summary["by_code"].items():
            title = codes.title_of(code) or ""
            lines.append(
                f"  {code}  {entry['findings']:5d} finding(s)"
                f"  {entry['occurrences']:5d} occurrence(s)"
                f"  {title}"
            )
    if summary["by_module"]:
        lines.append("by module:")
        for module, entry in summary["by_module"].items():
            lines.append(
                f"  {module}: {entry['findings']} finding(s),"
                f" {entry['occurrences']} occurrence(s)"
            )
    return "\n".join(lines)
