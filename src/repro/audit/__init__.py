"""`rowpoly audit`: corpus-scale auditing with a deterministic evidence store.

The pipeline has three stages, each a pure artifact-to-artifact step:

* **Discover** (:mod:`repro.audit.discover`) — corpus roots -> a
  deterministic, content-sharded :class:`AuditPlan`;
* **Execute** (:mod:`repro.audit.execute`) — plan -> stable check
  payloads, in-process, via a local worker pool, or fanned across a
  sharded daemon fleet; the persistent result store makes warm
  re-audits near-zero-solve;
* **Judge** (:mod:`repro.audit.judge`) — payloads -> the findings
  document: deduplicated findings with content-addressed IDs
  (:func:`repro.diag.finding_id`), witness-path citations and exact
  repro commands, plus aborted/unreadable side-lists.

:func:`run_audit` chains the three and reports tallies into the
metrics subsystem; :mod:`repro.audit.store` persists documents under
self-verifying envelopes; :mod:`repro.audit.report` and
:mod:`repro.audit.diff` are the triage surfaces over them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..infer.state import FlowOptions
from ..server.metrics import ServerMetrics
from ..store.keys import config_digest
from .diff import DiffResult, diff_documents, render_diff
from .discover import (
    AuditPlan,
    AuditUnit,
    DiscoveryError,
    discover,
    shard_of,
)
from .execute import ExecuteConfig, execute
from .findings import FINDINGS_SCHEMA, Finding, Occurrence
from .judge import JudgeResult, judge
from .report import render_report, report_summary
from .store import FindingsError, load_findings, save_findings

__all__ = [
    "AuditPlan",
    "AuditResult",
    "AuditUnit",
    "DiffResult",
    "DiscoveryError",
    "ExecuteConfig",
    "FINDINGS_SCHEMA",
    "Finding",
    "FindingsError",
    "JudgeResult",
    "Occurrence",
    "diff_documents",
    "discover",
    "execute",
    "judge",
    "load_findings",
    "render_diff",
    "render_report",
    "report_summary",
    "run_audit",
    "save_findings",
    "shard_of",
]


@dataclass
class AuditResult:
    """Everything one audit run produced."""

    plan: AuditPlan
    document: dict[str, object]
    #: Worst per-module exit folded with usage errors — the process exit
    #: for ``rowpoly audit run``.
    exit: int
    judged: JudgeResult


def run_audit(
    paths: list[str],
    *,
    engine: str = "flow",
    options: Optional[FlowOptions] = None,
    budget_spec: Optional[dict] = None,
    store_dir: Optional[str] = None,
    jobs: int = 1,
    server: Optional[str] = None,
    shards: int = 1,
    retries: int = 4,
    retry_seed: int = 0,
    metrics: Optional[ServerMetrics] = None,
) -> AuditResult:
    """Discover, execute and judge one audit over ``paths``.

    Raises :class:`DiscoveryError` for nonexistent roots (a usage
    error); everything else — ill-typed modules, unreadable files,
    budget-aborted declarations — lands *in* the findings document.

    When ``metrics`` is provided the run's tallies (and, for the
    in-process path, the persistent store's hit/miss traffic) are
    recorded on it; the CLI dumps that snapshot via ``--metrics-dump``.
    """
    plan = discover(paths, shards=shards)
    store = None
    if store_dir is not None and server is None and jobs <= 1:
        from ..store import open_store

        store = open_store(
            store_dir,
            metrics_hook=(
                metrics.record_store_event if metrics is not None else None
            ),
        )
    payloads = execute(
        plan,
        ExecuteConfig(
            engine=engine,
            options=options,
            budget_spec=budget_spec,
            store_dir=store_dir,
            jobs=jobs,
            server=server,
            retries=retries,
            retry_seed=retry_seed,
        ),
        store=store,
    )
    judged = judge(
        plan,
        payloads,
        engine=engine,
        config_digest=config_digest(engine, options),
    )
    if metrics is not None:
        metrics.record_audit_event("modules_audited", judged.modules)
        metrics.record_audit_event("modules_ok", judged.modules_ok)
        metrics.record_audit_event(
            "modules_with_findings", judged.modules_with_findings
        )
        metrics.record_audit_event(
            "modules_aborted", judged.modules_aborted
        )
        metrics.record_audit_event(
            "findings_total", len(judged.findings)
        )
        for payload in payloads:
            stats = payload.get("solver_stats")
            if stats is not None:
                metrics.merge_solver_stats(stats)
    return AuditResult(
        plan=plan,
        document=judged.document,
        exit=judged.exit,
        judged=judged,
    )
