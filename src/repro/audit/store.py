"""Crash-safe persistence for findings documents.

A findings file is the evidence an ``audit diff`` gate trusts, so it
gets the same self-verifying envelope discipline as the result store
(:mod:`repro.store.disk`): the document is wrapped in ``{"format",
"kind", "sha256", "payload"}`` with the hash covering the canonical
payload encoding, and written atomically (same-directory temp file,
``fsync``, ``os.replace``) so a crash mid-write leaves either the old
file or the new one — never a torn hybrid.

Reading **fails loudly**: a missing, unparseable, mis-kinded or
hash-mismatched file is quarantined (renamed aside with a ``.corrupt``
suffix, preserving the bytes for forensics) and :class:`FindingsError`
is raised.  The caller's remedy is always to re-audit — the store
produces correct findings or no findings, never silently wrong ones,
which is what lets a CI gate treat "load succeeded" as "evidence is
exactly what the audit wrote".
"""

from __future__ import annotations

import json
import os
import tempfile

from ..store.disk import payload_digest

#: Envelope format for findings files on disk.
FINDINGS_FORMAT = 1
_KIND = "rowpoly-audit-findings"


class FindingsError(Exception):
    """A findings file is missing or failed verification; re-audit."""


def save_findings(path: str, document: dict[str, object]) -> None:
    """Atomically write a findings document under its envelope."""
    envelope = {
        "format": FINDINGS_FORMAT,
        "kind": _KIND,
        "sha256": payload_digest(document),
        "payload": document,
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=".findings-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(envelope, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _quarantine(path: str) -> str:
    """Move a bad findings file aside; returns the new path ('' if the
    rename itself failed — the error message still stands either way)."""
    target = path + ".corrupt"
    try:
        os.replace(path, target)
    except OSError:
        return ""
    return target


def load_findings(path: str) -> dict[str, object]:
    """Load and verify a findings document.

    Raises :class:`FindingsError` on any defect — after quarantining the
    file so a retry cannot trip over the same corrupt bytes.
    """
    try:
        with open(path) as handle:
            envelope = json.load(handle)
    except FileNotFoundError:
        raise FindingsError(f"no findings file at {path}") from None
    except (OSError, json.JSONDecodeError) as error:
        quarantined = _quarantine(path)
        raise FindingsError(
            f"unreadable findings file {path}: {error}"
            + (f" (quarantined to {quarantined})" if quarantined else "")
        ) from None
    reason = _verify(envelope)
    if reason is not None:
        quarantined = _quarantine(path)
        raise FindingsError(
            f"corrupt findings file {path}: {reason}"
            + (f" (quarantined to {quarantined})" if quarantined else "")
            + "; re-run `rowpoly audit run` to regenerate it"
        )
    return envelope["payload"]


def _verify(envelope: object) -> str | None:
    """Why an envelope is bad, or ``None`` when it verifies."""
    if not isinstance(envelope, dict):
        return "envelope is not an object"
    if envelope.get("format") != FINDINGS_FORMAT:
        return f"unsupported format {envelope.get('format')!r}"
    if envelope.get("kind") != _KIND:
        return f"wrong kind {envelope.get('kind')!r}"
    payload = envelope.get("payload")
    if not isinstance(payload, dict):
        return "payload is not an object"
    if envelope.get("sha256") != payload_digest(payload):
        return "sha256 mismatch"
    return None
