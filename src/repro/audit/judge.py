"""Judge: aggregate check payloads into the findings document.

The last stage of the pipeline consumes ``(unit, payload)`` pairs — the
Discover plan zipped with the Execute payloads, in plan order — and
produces the deterministic findings document
(:func:`repro.audit.findings.findings_document`).  It always runs
locally in the audit driver, from the stable reports alone, so offline,
``--jobs`` and ``--server`` executions judge identically: the document
inherits the reports' byte-parity contract.

Identity needs declaration *content* fingerprints
(:attr:`repro.lang.module.Decl.fingerprint`), which stable reports
deliberately omit; the judge therefore re-parses **failing modules
only** — a parse, never a solve, and only for the (typically small)
ill-typed fraction of a corpus.  File-level findings (parse and lex
failures have no declaration) use the module source's content
fingerprint instead.

Aborted declarations become ``aborted`` citations, not findings, and
unreadable files become ``unreadable`` entries — both carried on the
document so a triage surface can tell "clean" from "partially audited".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang import LexError, ParseError, parse_module
from ..server.service import EXIT_USAGE
from ..util import run_deep
from .discover import AuditPlan
from .findings import (
    Finding,
    Occurrence,
    finding_from_diagnostic,
    findings_document,
)


@dataclass
class JudgeResult:
    """The findings document plus the tallies the metrics surface wants."""

    document: dict[str, object]
    findings: list[Finding]
    modules: int
    modules_ok: int
    modules_with_findings: int
    modules_aborted: int
    #: Worst per-module exit, folded with ``EXIT_USAGE`` for unreadable
    #: roots — the ``audit run`` process exit.
    exit: int


def _decl_fingerprints(source: str) -> dict[str, str]:
    """Name -> content fingerprint for a module's declarations.

    Best-effort: a module whose stored report predates a source change
    could in principle fail to parse, in which case file-level identity
    (the caller's fallback) still yields stable IDs.
    """
    try:
        module = run_deep(lambda: parse_module(source))
    except (ParseError, LexError):
        return {}
    return {decl.name: decl.fingerprint for decl in module.decls}


def judge(
    plan: AuditPlan,
    payloads: list[dict[str, object]],
    *,
    engine: str,
    config_digest: str,
) -> JudgeResult:
    """Fold plan + payloads into the deterministic findings document."""
    merged: dict[str, Finding] = {}
    aborted: list[Occurrence] = []
    unjudged: list[tuple[str, str]] = []
    modules_ok = 0
    modules_with_findings = 0
    modules_aborted = 0
    worst_exit = EXIT_USAGE if plan.unreadable else 0
    for unit, payload in zip(plan.units, payloads):
        report = payload["report"]
        exit_code = int(payload["exit"])
        worst_exit = max(worst_exit, exit_code)
        found_here = False
        aborted_here = False
        if report.get("code"):
            # File-level failure (parse/lex): no declarations, identity
            # falls back to the module source fingerprint.
            for diagnostic in report.get("diagnostics") or ():
                found_here = True
                _merge(
                    merged,
                    finding_from_diagnostic(
                        diagnostic,
                        decl="",
                        decl_fingerprint=unit.fingerprint,
                        occurrence=Occurrence(
                            file=unit.path,
                            decl="",
                            line=int(report.get("line") or 0),
                            column=int(report.get("column") or 0),
                        ),
                    ),
                )
        elif not report.get("ok") and not report.get("decls"):
            # No verdict at all — e.g. a batch slot whose server
            # connection died.  Unjudged is unreadable-shaped data, not
            # an "ok" module and never a silent drop.
            unjudged.append(
                (unit.path, str(report.get("message") or "no report"))
            )
            worst_exit = max(worst_exit, EXIT_USAGE)
            continue
        else:
            fingerprints: dict[str, str] = {}
            if any(
                decl.get("status") != "ok"
                for decl in report.get("decls") or ()
            ):
                fingerprints = _decl_fingerprints(unit.source)
            for decl in report.get("decls") or ():
                status = decl.get("status")
                if status == "ok":
                    continue
                name = str(decl.get("decl") or "")
                occurrence = Occurrence(
                    file=unit.path,
                    decl=name,
                    line=int(decl.get("line") or 0),
                    column=int(decl.get("column") or 0),
                )
                if status == "aborted":
                    aborted_here = True
                    aborted.append(occurrence)
                    continue
                fingerprint = fingerprints.get(name, unit.fingerprint)
                for diagnostic in decl.get("diagnostics") or ():
                    found_here = True
                    _merge(
                        merged,
                        finding_from_diagnostic(
                            diagnostic,
                            decl=name,
                            decl_fingerprint=fingerprint,
                            occurrence=occurrence,
                        ),
                    )
        if found_here:
            modules_with_findings += 1
        elif aborted_here:
            modules_aborted += 1
        else:
            modules_ok += 1
    findings = list(merged.values())
    document = findings_document(
        engine=engine,
        config_digest=config_digest,
        modules=len(plan.units),
        modules_with_findings=modules_with_findings,
        findings=findings,
        aborted=aborted,
        unreadable=list(plan.unreadable) + unjudged,
    )
    return JudgeResult(
        document=document,
        findings=findings,
        modules=len(plan.units),
        modules_ok=modules_ok,
        modules_with_findings=modules_with_findings,
        modules_aborted=modules_aborted,
        exit=worst_exit,
    )


def _merge(merged: dict[str, Finding], finding: Finding) -> None:
    """Fold one minted finding into the by-identity map."""
    existing = merged.get(finding.id)
    if existing is None:
        merged[finding.id] = finding
    else:
        existing.occurrences.extend(finding.occurrences)
