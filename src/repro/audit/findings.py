"""Finding values and the machine-readable findings document.

A **finding** is one diagnostic promoted to a durable artifact: a
content-addressed identity (:func:`repro.diag.finding_id`), the witness
path as its citation, the exact ``rowpoly`` command that reproduces it,
and the list of *occurrences* — (file, declaration, position) citations
— where the identical defect was observed.  Two byte-identical
declarations failing identically in two files are one finding with two
occurrences; renaming a file changes an occurrence's path but never the
finding's identity.

The **findings document** is the Judge stage's output and the unit every
triage surface consumes (``audit report``, ``audit diff``, the CI gate).
It is deterministic by construction: findings are sorted by ``(code,
id)``, occurrences by ``(file, line, column, decl)``, every list the
document carries is sorted, and nothing time- or host-dependent is ever
included — so auditing the same corpus twice (or through a daemon, or
through a 4-shard fleet) yields byte-identical JSON, which is what lets
``cmp`` be the regression oracle.

Aborted declarations (``RP0998`` budget trips) are *not* findings: an
abort is not a verdict, so it is listed separately under ``aborted`` —
the same "partial results are never persisted as answers" rule the
result store follows.
"""

from __future__ import annotations

import shlex
from dataclasses import dataclass, field

from ..diag import codes, finding_id, witness_shape

#: Version of the findings-document JSON shape
#: (``docs/schema/audit-findings.schema.json``).
FINDINGS_SCHEMA = 1


@dataclass(frozen=True)
class Occurrence:
    """One observed instance of a finding: a (file, decl, pos) citation."""

    file: str
    decl: str
    line: int
    column: int

    def as_dict(self) -> dict[str, object]:
        return {
            "file": self.file,
            "decl": self.decl,
            "line": self.line,
            "column": self.column,
        }

    def sort_key(self) -> tuple:
        return (self.file, self.line, self.column, self.decl)


@dataclass
class Finding:
    """One deduplicated finding with its occurrence citations."""

    id: str
    code: str
    message: str
    severity: str
    decl: str
    decl_fingerprint: str
    label: str
    witness: list[dict]
    related: list[dict]
    occurrences: list[Occurrence] = field(default_factory=list)

    @property
    def title(self) -> str:
        return codes.title_of(self.code) or ""

    def repro_argv(self, engine: str) -> list[str]:
        """The exact re-run command: one file, same engine, JSON out.

        Re-checking the first (sorted) occurrence's file reproduces the
        diagnostic this finding was minted from — the pipeline's
        "reproducible from artifacts alone" contract.
        """
        first = min(self.occurrences, key=Occurrence.sort_key)
        return [
            "rowpoly", "check", first.file, "--engine", engine, "--json",
        ]

    def as_dict(self, engine: str) -> dict[str, object]:
        argv = self.repro_argv(engine)
        return {
            "id": self.id,
            "code": self.code,
            "title": self.title,
            "severity": self.severity,
            "message": self.message,
            "decl": self.decl,
            "decl_fingerprint": self.decl_fingerprint,
            "label": self.label,
            "witness": self.witness,
            "related": self.related,
            "occurrences": [
                occurrence.as_dict()
                for occurrence in sorted(
                    self.occurrences, key=Occurrence.sort_key
                )
            ],
            "repro": {
                "argv": argv,
                "command": shlex.join(argv),
            },
        }


def finding_from_diagnostic(
    diagnostic: dict,
    *,
    decl: str,
    decl_fingerprint: str,
    occurrence: Occurrence,
) -> Finding:
    """Mint (or extend, by identity) a finding from one diagnostic dict.

    The identity folds the diagnostic's code, the failing declaration's
    content fingerprint and the witness shape — see
    :mod:`repro.diag.fingerprint` for why paths and structured positions
    stay out.
    """
    code = str(diagnostic.get("code") or "")
    return Finding(
        id=finding_id(code, decl_fingerprint, witness_shape(diagnostic)),
        code=code,
        message=str(diagnostic.get("message") or ""),
        severity=str(diagnostic.get("severity") or "error"),
        decl=decl,
        decl_fingerprint=decl_fingerprint,
        label=str(diagnostic.get("label") or ""),
        witness=list(diagnostic.get("witness") or ()),
        related=list(diagnostic.get("related") or ()),
        occurrences=[occurrence],
    )


def findings_document(
    *,
    engine: str,
    config_digest: str,
    modules: int,
    modules_with_findings: int,
    findings: list[Finding],
    aborted: list[Occurrence],
    unreadable: list[tuple[str, str]],
) -> dict[str, object]:
    """Assemble the deterministic findings document."""
    ordered = sorted(findings, key=lambda f: (f.code, f.id))
    by_code: dict[str, int] = {}
    occurrences = 0
    for finding in ordered:
        by_code[finding.code] = by_code.get(finding.code, 0) + 1
        occurrences += len(finding.occurrences)
    return {
        "findings_schema": FINDINGS_SCHEMA,
        "engine": engine,
        "config_digest": config_digest,
        "modules": modules,
        "modules_with_findings": modules_with_findings,
        "findings": [finding.as_dict(engine) for finding in ordered],
        "aborted": [
            occurrence.as_dict()
            for occurrence in sorted(aborted, key=Occurrence.sort_key)
        ],
        "unreadable": [
            {"file": path, "message": message}
            for path, message in sorted(unreadable)
        ],
        "summary": {
            "findings": len(ordered),
            "occurrences": occurrences,
            "by_code": dict(sorted(by_code.items())),
        },
    }
