"""`rowpoly audit diff`: compare findings documents by identity.

The CI gate: given a *baseline* findings document and a *current* one,
classify every finding ID as **new** (current only), **resolved**
(baseline only) or **persisting** (both).  Because IDs are content-
addressed (:mod:`repro.diag.fingerprint`), renaming or moving modules
produces an empty delta — only a genuinely new defect (or a change in
how an old one fails) is "new".

Exit-code semantics (``exit_code``): ``0`` when nothing is new —
resolved findings are progress, not regressions — and ``1`` when any
new finding appears; the CLI maps corrupt/missing documents to the
usage exit before ever reaching this module.  A config-digest mismatch
between the two documents does not fail the diff but is surfaced on the
result, since findings produced by different engine configurations are
comparable only advisedly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DiffResult:
    """The identity-level delta between two findings documents."""

    new: list[dict[str, object]]
    resolved: list[dict[str, object]]
    persisting: list[str]
    #: ``(baseline_digest, current_digest)`` when they disagree.
    config_mismatch: tuple[str, str] | None = None

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0

    def as_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "new": self.new,
            "resolved": self.resolved,
            "persisting": self.persisting,
            "summary": {
                "new": len(self.new),
                "resolved": len(self.resolved),
                "persisting": len(self.persisting),
            },
        }
        if self.config_mismatch is not None:
            out["config_mismatch"] = {
                "baseline": self.config_mismatch[0],
                "current": self.config_mismatch[1],
            }
        return out


def _by_id(document: dict[str, object]) -> dict[str, dict[str, object]]:
    return {
        str(finding.get("id") or ""): finding
        for finding in document.get("findings") or ()
    }


def _brief(finding: dict[str, object]) -> dict[str, object]:
    """The per-finding slice a diff consumer needs to act: identity,
    classification, and the citation/repro to chase it down."""
    occurrences = finding.get("occurrences") or ()
    return {
        "id": finding.get("id"),
        "code": finding.get("code"),
        "message": finding.get("message"),
        "decl": finding.get("decl"),
        "occurrences": list(occurrences),
        "repro": finding.get("repro"),
    }


def diff_documents(
    baseline: dict[str, object], current: dict[str, object]
) -> DiffResult:
    """Classify finding IDs across a baseline and a current document."""
    old = _by_id(baseline)
    new = _by_id(current)
    mismatch = None
    old_digest = str(baseline.get("config_digest") or "")
    new_digest = str(current.get("config_digest") or "")
    if old_digest != new_digest:
        mismatch = (old_digest, new_digest)
    return DiffResult(
        new=[
            _brief(new[fid])
            for fid in sorted(set(new) - set(old))
        ],
        resolved=[
            _brief(old[fid])
            for fid in sorted(set(old) - set(new))
        ],
        persisting=sorted(set(old) & set(new)),
        config_mismatch=mismatch,
    )


def render_diff(result: DiffResult) -> str:
    """Human-readable delta (the non-``--json`` rendering)."""
    lines = [
        "rowpoly audit diff",
        f"  new        {len(result.new)}",
        f"  resolved   {len(result.resolved)}",
        f"  persisting {len(result.persisting)}",
    ]
    if result.config_mismatch is not None:
        lines.append(
            "  warning: config digest changed"
            f" ({result.config_mismatch[0]} ->"
            f" {result.config_mismatch[1]});"
            " findings may not be comparable"
        )
    for finding in result.new:
        occurrence = (finding.get("occurrences") or [{}])[0]
        lines.append(
            f"new: {finding.get('id')}  {finding.get('code')}"
            f"  {occurrence.get('file', '')}"
            f"  {finding.get('message')}"
        )
        repro = finding.get("repro") or {}
        if repro.get("command"):
            lines.append(f"     repro: {repro['command']}")
    for finding in result.resolved:
        lines.append(
            f"resolved: {finding.get('id')}  {finding.get('code')}"
            f"  {finding.get('message')}"
        )
    return "\n".join(lines)
