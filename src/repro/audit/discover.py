"""Discover: walk corpus roots into a deterministic shard plan.

The first stage of the audit pipeline turns an argument list of files
and directories into an :class:`AuditPlan` — the complete, ordered
work-list every later stage (and every re-audit) derives from:

* **deterministic enumeration** — directories are walked with sorted
  entries (the same discipline as ``rowpoly check``), the final unit
  list is sorted by path, and each unit carries its source *content
  fingerprint*, so two audits of the same tree produce the same plan
  byte for byte;
* **content-addressed shard assignment** — a unit's shard is derived
  from its content fingerprint, not its path or position, so renaming
  or reordering files never reshuffles work between shards (and a
  store-warm re-audit hits the same shard-local caches);
* **unreadable paths are data, not crashes** — a file that cannot be
  read is recorded on the plan (and later reported with the offline
  checker's ``IOError`` shape); only a *root* that does not exist at
  all is a usage error, signalled by :class:`DiscoveryError`.

Sources are read here, once: every unit carries its text so the Execute
stage (local pool or daemon fleet) and the Judge stage (declaration
fingerprints for finding IDs) agree on exactly the bytes that were
audited, even if the tree changes mid-run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..server.service import fingerprint_source

#: File extension collected when an audit root is a directory (the same
#: suffix ``rowpoly check`` expands).
MODULE_SUFFIX = ".rp"


class DiscoveryError(Exception):
    """A corpus root does not exist (a usage error, not a finding)."""


@dataclass(frozen=True)
class AuditUnit:
    """One module to audit: its path, bytes, identity and shard."""

    path: str
    source: str
    #: Content fingerprint of ``source`` (the daemon's session key).
    fingerprint: str
    #: Deterministic shard index in ``[0, shards)``; content-derived.
    shard: int


@dataclass(frozen=True)
class AuditPlan:
    """The Discover stage's artifact: an ordered, sharded work-list."""

    units: tuple[AuditUnit, ...]
    #: Shard count the plan was computed for.
    shards: int
    #: ``(path, message)`` for files that could not be read.
    unreadable: tuple[tuple[str, str], ...] = ()

    def __len__(self) -> int:
        return len(self.units)

    def shard_sizes(self) -> dict[str, int]:
        """Units per shard (JSON-keyed) — the utilization the audit
        metrics report; an empty shard is reported as 0, not omitted."""
        sizes = {str(index): 0 for index in range(self.shards)}
        for unit in self.units:
            sizes[str(unit.shard)] += 1
        return sizes


def shard_of(fingerprint: str, shards: int) -> int:
    """The content-derived shard of one unit.

    The fingerprint is already a uniform hex hash, so its integer value
    modulo the shard count balances without further mixing — and, being
    content-derived, survives any rename.
    """
    if shards <= 1:
        return 0
    return int(fingerprint, 16) % shards


def _expand_roots(paths: list[str]) -> list[str]:
    """Files from the roots, sorted; raises :class:`DiscoveryError`."""
    files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs.sort()
                files.extend(
                    os.path.join(root, name)
                    for name in sorted(names)
                    if name.endswith(MODULE_SUFFIX)
                )
        elif os.path.isfile(path):
            files.append(path)
        else:
            raise DiscoveryError(
                f"no such file or directory: {path}"
            )
    # De-duplicate (a file named twice, or once directly and once via
    # its directory) while keeping the global sort.
    return sorted(dict.fromkeys(files))


def discover(paths: list[str], shards: int = 1) -> AuditPlan:
    """Build the audit plan for a list of corpus roots."""
    if shards < 1:
        raise ValueError("shards must be >= 1")
    units: list[AuditUnit] = []
    unreadable: list[tuple[str, str]] = []
    for path in _expand_roots(paths):
        try:
            with open(path) as handle:
                source = handle.read()
        except OSError as error:
            unreadable.append((path, str(error)))
            continue
        fingerprint = fingerprint_source(source)
        units.append(
            AuditUnit(
                path=path,
                source=source,
                fingerprint=fingerprint,
                shard=shard_of(fingerprint, shards),
            )
        )
    return AuditPlan(
        units=tuple(units),
        shards=shards,
        unreadable=tuple(unreadable),
    )
