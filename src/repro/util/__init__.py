"""Small shared utilities (deadlines, budgets, deep-stack execution)."""

from __future__ import annotations

import sys
import threading
import time
from typing import Callable, Optional, TypeVar

from .budget import Budget, BudgetExceeded, tighten

__all__ = [
    "Budget",
    "BudgetExceeded",
    "Cancelled",
    "Deadline",
    "DeadlineExceeded",
    "run_deep",
    "tighten",
]

T = TypeVar("T")


class DeadlineExceeded(Exception):
    """A request's wall-clock budget ran out mid-inference.

    Deliberately *not* an :class:`repro.infer.errors.InferenceError`: a
    timeout says nothing about the program being ill-typed, so it must
    never be recorded as a type error (or cached as one).
    """


class Cancelled(Exception):
    """A request was cancelled by its client before completion."""


class Deadline:
    """A cooperative wall-clock deadline with client-side cancellation.

    The serving layer creates one per request and threads it into the
    inference engines, which call :meth:`check` at safe points (between
    declarations; periodically inside the flow engine's hot loop).  The
    object is also the cancellation token: :meth:`cancel` can be called
    from any thread and the next :meth:`check` raises :class:`Cancelled`.

    ``Deadline(None)`` never expires (but can still be cancelled), so
    callers can thread one unconditionally.
    """

    __slots__ = ("expires_at", "_cancelled")

    def __init__(self, seconds: Optional[float] = None) -> None:
        self.expires_at = (
            None if seconds is None else time.monotonic() + seconds
        )
        self._cancelled = threading.Event()

    @classmethod
    def after(cls, seconds: Optional[float]) -> "Deadline":
        return cls(seconds)

    def cancel(self) -> None:
        """Request cancellation (thread-safe, idempotent)."""
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    def remaining(self) -> Optional[float]:
        """Seconds left, or ``None`` for an unbounded deadline."""
        if self.expires_at is None:
            return None
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        return (
            self.expires_at is not None
            and time.monotonic() >= self.expires_at
        )

    def check(self) -> None:
        """Raise :class:`Cancelled`/:class:`DeadlineExceeded` when due."""
        if self._cancelled.is_set():
            raise Cancelled("request cancelled by client")
        if self.expired():
            raise DeadlineExceeded("request deadline exceeded")


def run_deep(fn: Callable[[], T], stack_mb: int = 512,
             recursion_limit: int = 1_000_000) -> T:
    """Run ``fn`` in a thread with a large stack and recursion limit.

    The inference engines recurse over the AST; the Fig. 9 decoder
    workloads are deeply right-nested let-chains (thousands of bindings),
    which overflows CPython's default stack.  The paper's SML
    implementation has no such limit; this helper removes ours.
    """
    result: list[T] = []
    error: list[BaseException] = []

    def runner() -> None:
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(recursion_limit)
        try:
            result.append(fn())
        except BaseException as exc:  # re-raised in the caller
            error.append(exc)
        finally:
            sys.setrecursionlimit(old_limit)

    old_stack = threading.stack_size()
    threading.stack_size(stack_mb * 1024 * 1024)
    try:
        thread = threading.Thread(target=runner)
        thread.start()
        thread.join()
    finally:
        threading.stack_size(old_stack)
    if error:
        raise error[0]
    return result[0]
