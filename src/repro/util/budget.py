"""Composable resource budgets for one inference request.

A :class:`Budget` bounds the *work* a request may spend, the way a
:class:`~repro.util.Deadline` bounds its wall-clock time.  The serving
layer creates one per request and threads it alongside the deadline into
:class:`~repro.infer.session.InferSession`,
:class:`~repro.infer.state.FlowState` and
:class:`~repro.boolfn.engine.SatEngine`; each layer charges the resource
it consumes:

* ``seconds`` — a wall-clock component (in addition to, not instead of,
  the request deadline: the deadline aborts the whole request with a 408,
  the budget degrades it gracefully into a partial report);
* ``solver_steps`` — CDCL search effort (conflicts + propagations +
  decisions, in the spirit of MiniSat/CaDiCaL conflict budgets), plus one
  step per linear-fragment query.  This is the lever that bounds the
  NP-complete general-CNF path the paper's symmetric concatenation
  (``@@``, Table 1) requires;
* ``max_clauses`` — a ceiling on the live clause count of the flow
  formula β (the memory guard: β is where a pathological program's state
  actually accumulates);
* ``core_queries`` — satisfiability re-queries spent by unsat-core
  deletion minimization (diagnostics effort; exhaustion degrades the
  diagnostic, never the verdict — see ``FlowInference.check_satisfiable``).

Exhaustion raises :class:`BudgetExceeded`.  The exception is deliberately
**non-poisoning**: like ``DeadlineExceeded`` it is not an
``InferenceError``, so it is never recorded (or cached) as a type error —
but unlike the deadline it is caught *per declaration* by the session,
which reports the declaration as ``aborted`` (diagnostic ``RP0998``) and
carries on, producing a partial report instead of a failed request.

A ``Budget()`` with no limits never trips, so callers can thread one
unconditionally.  Budgets are request-scoped and used by a single worker
thread; the counters are not locked.
"""

from __future__ import annotations

import time
from typing import Any, Mapping, Optional


class BudgetExceeded(Exception):
    """A request's resource budget ran out mid-inference.

    Deliberately *not* an :class:`repro.infer.errors.InferenceError`:
    exhausting a budget says nothing about the program being ill-typed,
    so it must never poison a session or be cached as a type error.
    ``resource`` names the exhausted dimension (``seconds``,
    ``solver_steps``, ``clauses``, ``core_queries`` or ``injected`` for
    fault-injected trips).
    """

    def __init__(self, resource: str, limit: float, spent: float) -> None:
        super().__init__(
            f"{resource} budget exhausted "
            f"(limit {_fmt(limit)}, spent {_fmt(spent)})"
        )
        self.resource = resource
        self.limit = limit
        self.spent = spent


def _fmt(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.3f}"
    return str(int(value))


class Budget:
    """A composable per-request resource budget (all limits optional)."""

    __slots__ = (
        "seconds",
        "solver_steps",
        "max_clauses",
        "core_queries",
        "_expires_at",
        "_solver_spent",
        "_core_spent",
        "_clauses_peak",
    )

    def __init__(
        self,
        *,
        seconds: Optional[float] = None,
        solver_steps: Optional[int] = None,
        max_clauses: Optional[int] = None,
        core_queries: Optional[int] = None,
    ) -> None:
        self.seconds = seconds
        self.solver_steps = solver_steps
        self.max_clauses = max_clauses
        self.core_queries = core_queries
        self._expires_at = (
            None if seconds is None else time.monotonic() + seconds
        )
        self._solver_spent = 0
        self._core_spent = 0
        self._clauses_peak = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def unlimited(cls) -> "Budget":
        return cls()

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "Budget":
        """Build a budget from a wire/CLI parameter object.

        Accepted keys: ``ms`` (wall-clock milliseconds), ``solver_steps``,
        ``max_clauses``, ``core_queries``.  Raises ``ValueError`` on
        unknown keys or non-positive limits, so callers can map the
        failure to an invalid-params error.
        """
        known = {"ms", "solver_steps", "max_clauses", "core_queries"}
        unknown = set(params) - known
        if unknown:
            raise ValueError(
                f"unknown budget field(s): {', '.join(sorted(unknown))}"
            )
        limits = {}
        for key in known:
            value = params.get(key)
            if value is None:
                continue
            if not isinstance(value, (int, float)) or isinstance(value, bool) \
                    or value <= 0:
                raise ValueError(f"budget {key!r} must be a positive number")
            limits[key] = value
        return cls(
            seconds=(limits["ms"] / 1000.0) if "ms" in limits else None,
            solver_steps=(
                int(limits["solver_steps"])
                if "solver_steps" in limits else None
            ),
            max_clauses=(
                int(limits["max_clauses"]) if "max_clauses" in limits else None
            ),
            core_queries=(
                int(limits["core_queries"])
                if "core_queries" in limits else None
            ),
        )

    @property
    def bounded(self) -> bool:
        """Whether any limit is set at all."""
        return (
            self.seconds is not None
            or self.solver_steps is not None
            or self.max_clauses is not None
            or self.core_queries is not None
        )

    # ------------------------------------------------------------------
    # charging (each raises BudgetExceeded when its limit is crossed)
    # ------------------------------------------------------------------
    def check_time(self) -> None:
        """Raise when the wall-clock component has expired."""
        if self._expires_at is not None and \
                time.monotonic() >= self._expires_at:
            raise BudgetExceeded(
                "seconds", self.seconds, self.seconds  # type: ignore[arg-type]
            )

    def charge_solver_steps(self, steps: int = 1) -> None:
        """Charge CDCL search effort (conflicts/propagations/decisions)."""
        self._solver_spent += steps
        if (
            self.solver_steps is not None
            and self._solver_spent > self.solver_steps
        ):
            raise BudgetExceeded(
                "solver_steps", self.solver_steps, self._solver_spent
            )

    def charge_clauses(self, live_clauses: int) -> None:
        """Enforce the clause-count ceiling on the flow formula."""
        if live_clauses > self._clauses_peak:
            self._clauses_peak = live_clauses
        if self.max_clauses is not None and live_clauses > self.max_clauses:
            raise BudgetExceeded("clauses", self.max_clauses, live_clauses)

    def charge_core_query(self) -> None:
        """Charge one unsat-core minimization satisfiability query."""
        self._core_spent += 1
        if (
            self.core_queries is not None
            and self._core_spent > self.core_queries
        ):
            raise BudgetExceeded(
                "core_queries", self.core_queries, self._core_spent
            )

    def poll(self) -> None:
        """The cheap composite check for cooperative hot-loop polling."""
        self.check_time()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def spent(self) -> dict[str, float]:
        out: dict[str, float] = {
            "solver_steps": self._solver_spent,
            "core_queries": self._core_spent,
            "clauses_peak": self._clauses_peak,
        }
        if self._expires_at is not None:
            out["seconds_remaining"] = max(
                0.0, self._expires_at - time.monotonic()
            )
        return out

    def as_dict(self) -> dict[str, object]:
        """The configured limits (``None`` entries omitted)."""
        out: dict[str, object] = {}
        if self.seconds is not None:
            out["ms"] = self.seconds * 1000.0
        if self.solver_steps is not None:
            out["solver_steps"] = self.solver_steps
        if self.max_clauses is not None:
            out["max_clauses"] = self.max_clauses
        if self.core_queries is not None:
            out["core_queries"] = self.core_queries
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        limits = self.as_dict()
        return f"Budget({limits})" if limits else "Budget(unlimited)"


def tighten(
    base: Optional["Budget"], cap: Optional["Budget"]
) -> tuple[Optional["Budget"], bool]:
    """Pointwise-minimum of two budget specs, as a fresh uncharged budget.

    The daemon's brownout mode caps every request's budget with the
    configured brownout budget: each dimension takes the smaller of the
    two limits (an unset dimension never tightens).  Returns
    ``(budget, tightened)`` where ``tightened`` says whether ``cap``
    actually constrained anything — that flag is what makes a partial
    result honestly ``degraded`` (the brownout made it partial) rather
    than merely budget-limited by the caller's own request.

    The result is a *fresh* :class:`Budget` (its wall-clock starts now),
    so callers must tighten at service start, not at enqueue.
    """
    if cap is None or not cap.bounded:
        return base, False
    if base is None:
        return (
            Budget(
                seconds=cap.seconds,
                solver_steps=cap.solver_steps,
                max_clauses=cap.max_clauses,
                core_queries=cap.core_queries,
            ),
            True,
        )
    tightened = False

    def pick(mine, theirs):
        nonlocal tightened
        if theirs is None:
            return mine
        if mine is None or theirs < mine:
            tightened = True
            return theirs
        return mine

    merged = Budget(
        seconds=pick(base.seconds, cap.seconds),
        solver_steps=pick(base.solver_steps, cap.solver_steps),
        max_clauses=pick(base.max_clauses, cap.max_clauses),
        core_queries=pick(base.core_queries, cap.core_queries),
    )
    return (merged, True) if tightened else (base, False)
