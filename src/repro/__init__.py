"""repro — Optimal Inference of Fields in Row-Polymorphic Records.

A from-scratch Python reproduction of Axel Simon's PLDI 2014 paper.  The
package provides:

* :mod:`repro.lang` — the record calculus (AST, parser, pretty printer),
* :mod:`repro.types` — row-polymorphic type terms, unification, the
  polytype lattice,
* :mod:`repro.boolfn` — the Boolean-function flow domain with 2-SAT,
  Horn, dual-Horn and CDCL solvers,
* :mod:`repro.infer` — the flow inference (Fig. 3), applyS (Fig. 4), the
  Sect. 5 extensions, and the baselines (Milner-Mycroft, Damas-Milner,
  Rémy, Pottier),
* :mod:`repro.semantics` — concrete/collecting/monotype semantics and the
  αR/γR abstraction used by the completeness experiments,
* :mod:`repro.gdsl` — synthetic decoder workloads reproducing Fig. 9.

Quickstart::

    >>> from repro import infer, parse
    >>> result = infer(parse("#foo (@{foo = 42} {})"))
    >>> from repro.types import strip
    >>> strip(result.type)
    Int

    >>> infer(parse("#foo {}"))
    Traceback (most recent call last):
    ...
    repro.infer.errors.FlowUnsatisfiable: ...

Tooling should embed through the stable facade (:mod:`repro.api`),
which reports rejections as data instead of raising::

    >>> from repro import check_source
    >>> check_source("bad = #foo {}").codes()
    ['RP0001']
"""

from .api import CheckReport, check_path, check_source
from .diag import Diagnostic
from .infer import (
    FlowInference,
    FlowOptions,
    FlowResult,
    FlowUnsatisfiable,
    InferenceError,
    UnificationFailure,
    check_pottier,
    infer_damas_milner,
    infer_flow,
    infer_mycroft,
    infer_remy,
)
from .lang import parse, pretty
from .semantics import evaluate

__version__ = "1.0.0"

# The main entry point: the paper's flow inference.
infer = infer_flow

__all__ = [
    "CheckReport",
    "Diagnostic",
    "FlowInference",
    "FlowOptions",
    "FlowResult",
    "FlowUnsatisfiable",
    "InferenceError",
    "UnificationFailure",
    "__version__",
    "check_path",
    "check_pottier",
    "check_source",
    "evaluate",
    "infer",
    "infer_damas_milner",
    "infer_flow",
    "infer_mycroft",
    "infer_remy",
    "parse",
    "pretty",
]
