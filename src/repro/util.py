"""Small shared utilities."""

from __future__ import annotations

import sys
import threading
from typing import Callable, TypeVar

T = TypeVar("T")


def run_deep(fn: Callable[[], T], stack_mb: int = 512,
             recursion_limit: int = 1_000_000) -> T:
    """Run ``fn`` in a thread with a large stack and recursion limit.

    The inference engines recurse over the AST; the Fig. 9 decoder
    workloads are deeply right-nested let-chains (thousands of bindings),
    which overflows CPython's default stack.  The paper's SML
    implementation has no such limit; this helper removes ours.
    """
    result: list[T] = []
    error: list[BaseException] = []

    def runner() -> None:
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(recursion_limit)
        try:
            result.append(fn())
        except BaseException as exc:  # re-raised in the caller
            error.append(exc)
        finally:
            sys.setrecursionlimit(old_limit)

    old_stack = threading.stack_size()
    threading.stack_size(stack_mb * 1024 * 1024)
    try:
        thread = threading.Thread(target=runner)
        thread.start()
        thread.join()
    finally:
        threading.stack_size(old_stack)
    if error:
        raise error[0]
    return result[0]
