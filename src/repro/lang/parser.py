"""Recursive-descent parser for the record calculus.

Grammar (lowest precedence first)::

    expr     := lambda | letexpr | ifexpr | whenexpr | concat
    lambda   := '\\' IDENT+ '->' expr
    letexpr  := 'let' binding (';' binding)* 'in' expr
    binding  := IDENT IDENT* '=' expr          -- params are sugar for lambdas
    ifexpr   := 'if' expr 'then' expr 'else' expr
    whenexpr := 'when' IDENT 'in' IDENT 'then' expr 'else' expr
    concat   := app (('@' | '@@') app)*        -- left associative
    app      := atom+                          -- left associative
    atom     := IDENT | INT | 'true' | 'false'
              | '{' '}' | '{' IDENT '=' expr (',' IDENT '=' expr)* '}'
              | '#' IDENT | '@{' IDENT '=' expr '}' | '~' IDENT
              | '@[' IDENT '->' IDENT ']'
              | '[' (expr (',' expr)*)? ']'
              | '(' expr ')'

``let f x y = e in b`` desugars to ``let f = \\x y -> e in b`` and a
multi-binding let desugars to nested lets (left to right, so later bindings
see earlier ones).
"""

from __future__ import annotations

from .ast import (
    App,
    BoolLit,
    Concat,
    EmptyRec,
    Expr,
    If,
    IntLit,
    Lam,
    Let,
    ListLit,
    Remove,
    Rename,
    Select,
    Span,
    Update,
    Var,
    When,
    record_literal,
)
from .lexer import Token, TokenKind, tokenize


class ParseError(SyntaxError):
    """Raised on a syntax error, with the offending token position.

    ``span`` is the structured source region of the offending token (when
    one is known) so that batch/daemon JSON diagnostics can report
    line/column without scraping the message text.
    """

    def __init__(self, message: str, span: "Span | None" = None) -> None:
        super().__init__(message)
        self.span = span


_ATOM_STARTERS = frozenset(
    (
        TokenKind.IDENT,
        TokenKind.INT,
        TokenKind.KW_TRUE,
        TokenKind.KW_FALSE,
        TokenKind.LBRACE,
        TokenKind.HASH,
        TokenKind.AT_BRACE,
        TokenKind.AT_BRACKET,
        TokenKind.TILDE,
        TokenKind.LBRACKET,
        TokenKind.LPAREN,
    )
)


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # -- token plumbing -------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind is not TokenKind.EOF:
            self.position += 1
        return token

    def expect(self, kind: TokenKind) -> Token:
        token = self.peek()
        if token.kind is not kind:
            raise ParseError(
                f"expected {kind.value!r} but found {token.kind.value!r} "
                f"({token.text!r}) at {token.span}",
                token.span,
            )
        return self.advance()

    def at(self, kind: TokenKind) -> bool:
        return self.peek().kind is kind

    # -- grammar ---------------------------------------------------------
    def expr(self) -> Expr:
        token = self.peek()
        if token.kind is TokenKind.LAMBDA:
            return self.lambda_()
        if token.kind is TokenKind.KW_LET:
            return self.let()
        if token.kind is TokenKind.KW_IF:
            return self.if_()
        if token.kind is TokenKind.KW_WHEN:
            return self.when()
        return self.concat()

    def lambda_(self) -> Expr:
        start = self.expect(TokenKind.LAMBDA)
        params = [self.expect(TokenKind.IDENT).text]
        while self.at(TokenKind.IDENT):
            params.append(self.advance().text)
        self.expect(TokenKind.ARROW)
        body = self.expr()
        for param in reversed(params):
            body = Lam(param, body, span=start.span)
        return body

    def let(self) -> Expr:
        start = self.expect(TokenKind.KW_LET)
        bindings: list[tuple[str, Expr]] = [self.binding()]
        while self.at(TokenKind.SEMI):
            self.advance()
            if self.at(TokenKind.KW_IN):  # tolerate a trailing semicolon
                break
            bindings.append(self.binding())
        self.expect(TokenKind.KW_IN)
        body = self.expr()
        for name, bound in reversed(bindings):
            body = Let(name, bound, body, span=start.span)
        return body

    def binding(self) -> tuple[str, Expr]:
        name_token = self.expect(TokenKind.IDENT)
        params = []
        while self.at(TokenKind.IDENT):
            params.append(self.advance().text)
        self.expect(TokenKind.EQUALS)
        bound = self.expr()
        for param in reversed(params):
            bound = Lam(param, bound, span=name_token.span)
        return name_token.text, bound

    def if_(self) -> Expr:
        start = self.expect(TokenKind.KW_IF)
        cond = self.expr()
        self.expect(TokenKind.KW_THEN)
        then = self.expr()
        self.expect(TokenKind.KW_ELSE)
        orelse = self.expr()
        return If(cond, then, orelse, span=start.span)

    def when(self) -> Expr:
        start = self.expect(TokenKind.KW_WHEN)
        label = self.expect(TokenKind.IDENT).text
        self.expect(TokenKind.KW_IN)
        record = self.expect(TokenKind.IDENT).text
        self.expect(TokenKind.KW_THEN)
        then = self.expr()
        self.expect(TokenKind.KW_ELSE)
        orelse = self.expr()
        return When(label, record, then, orelse, span=start.span)

    def concat(self) -> Expr:
        expr = self.app()
        while self.at(TokenKind.AT) or self.at(TokenKind.AT_AT):
            operator = self.advance()
            right = self.app()
            expr = Concat(
                expr,
                right,
                symmetric=operator.kind is TokenKind.AT_AT,
                span=operator.span,
            )
        return expr

    def app(self) -> Expr:
        expr = self.atom()
        while self.peek().kind in _ATOM_STARTERS:
            argument = self.atom()
            expr = App(expr, argument, span=expr.span)
        return expr

    def atom(self) -> Expr:
        token = self.peek()
        kind = token.kind
        if kind is TokenKind.IDENT:
            self.advance()
            return Var(token.text, span=token.span)
        if kind is TokenKind.INT:
            self.advance()
            return IntLit(int(token.text), span=token.span)
        if kind is TokenKind.KW_TRUE:
            self.advance()
            return BoolLit(True, span=token.span)
        if kind is TokenKind.KW_FALSE:
            self.advance()
            return BoolLit(False, span=token.span)
        if kind is TokenKind.HASH:
            self.advance()
            label = self.expect(TokenKind.IDENT)
            return Select(label.text, span=token.span)
        if kind is TokenKind.TILDE:
            self.advance()
            label = self.expect(TokenKind.IDENT)
            return Remove(label.text, span=token.span)
        if kind is TokenKind.AT_BRACE:
            self.advance()
            label = self.expect(TokenKind.IDENT)
            self.expect(TokenKind.EQUALS)
            value = self.expr()
            self.expect(TokenKind.RBRACE)
            return Update(label.text, value, span=token.span)
        if kind is TokenKind.AT_BRACKET:
            self.advance()
            old_label = self.expect(TokenKind.IDENT)
            self.expect(TokenKind.ARROW)
            new_label = self.expect(TokenKind.IDENT)
            self.expect(TokenKind.RBRACKET)
            return Rename(old_label.text, new_label.text, span=token.span)
        if kind is TokenKind.LBRACE:
            return self.record()
        if kind is TokenKind.LBRACKET:
            return self.list_()
        if kind is TokenKind.LPAREN:
            self.advance()
            expr = self.expr()
            self.expect(TokenKind.RPAREN)
            return expr
        raise ParseError(
            f"expected an expression but found {kind.value!r} "
            f"({token.text!r}) at {token.span}",
            token.span,
        )

    def record(self) -> Expr:
        start = self.expect(TokenKind.LBRACE)
        if self.at(TokenKind.RBRACE):
            self.advance()
            return EmptyRec(span=start.span)
        fields: dict[str, Expr] = {}
        while True:
            label = self.expect(TokenKind.IDENT)
            if label.text in fields:
                raise ParseError(
                    f"duplicate field {label.text!r} in record literal "
                    f"at {label.span}",
                    label.span,
                )
            self.expect(TokenKind.EQUALS)
            fields[label.text] = self.expr()
            if self.at(TokenKind.COMMA):
                self.advance()
                continue
            break
        self.expect(TokenKind.RBRACE)
        return record_literal(fields, span=start.span)

    def list_(self) -> Expr:
        start = self.expect(TokenKind.LBRACKET)
        items: list[Expr] = []
        if not self.at(TokenKind.RBRACKET):
            items.append(self.expr())
            while self.at(TokenKind.COMMA):
                self.advance()
                items.append(self.expr())
        self.expect(TokenKind.RBRACKET)
        return ListLit(tuple(items), span=start.span)


def parse(source: str) -> Expr:
    """Parse a complete program; raise :class:`ParseError` on junk."""
    parser = _Parser(tokenize(source))
    expr = parser.expr()
    trailing = parser.peek()
    if trailing.kind is not TokenKind.EOF:
        raise ParseError(
            f"unexpected {trailing.kind.value!r} ({trailing.text!r}) after "
            f"expression at {trailing.span}",
            trailing.span,
        )
    return expr
