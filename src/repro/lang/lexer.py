"""Lexer for the concrete syntax of the record calculus.

The concrete syntax follows the paper's Haskell-flavoured examples::

    let f s = if some_cond then
                let s2 = @{foo = 42} s in #foo s2
              else s
    in f {}

Tokens specific to records: ``{}`` (empty record), ``{n = e, ...}``
(record literal sugar), ``#n`` (selector), ``@{n = e}`` (update), ``~n``
(field removal), ``@[old -> new]`` (field renaming), ``@`` / ``@@``
(asymmetric / symmetric concatenation) and the keywords of
``when n in x then e1 else e2``.

Line comments start with ``--``.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from .ast import Span


class TokenKind(enum.Enum):
    """Lexical token categories."""

    IDENT = "identifier"
    INT = "integer"
    LAMBDA = "\\"
    ARROW = "->"
    EQUALS = "="
    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMI = ";"
    HASH = "#"
    AT_BRACE = "@{"
    AT_BRACKET = "@["
    AT_AT = "@@"
    AT = "@"
    TILDE = "~"
    KW_LET = "let"
    KW_IN = "in"
    KW_IF = "if"
    KW_THEN = "then"
    KW_ELSE = "else"
    KW_WHEN = "when"
    KW_TRUE = "true"
    KW_FALSE = "false"
    EOF = "end of input"


KEYWORDS = {
    "let": TokenKind.KW_LET,
    "in": TokenKind.KW_IN,
    "if": TokenKind.KW_IF,
    "then": TokenKind.KW_THEN,
    "else": TokenKind.KW_ELSE,
    "when": TokenKind.KW_WHEN,
    "true": TokenKind.KW_TRUE,
    "false": TokenKind.KW_FALSE,
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source span."""

    kind: TokenKind
    text: str
    span: Span

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})@{self.span}"


class LexError(SyntaxError):
    """Raised on an unrecognised character.

    ``span`` locates the offending character for structured diagnostics.
    """

    def __init__(self, message: str, span: "Span | None" = None) -> None:
        super().__init__(message)
        self.span = span


_TOKEN_RE = re.compile(
    r"""
      (?P<ws>[ \t\r]+)
    | (?P<nl>\n)
    | (?P<comment>--[^\n]*)
    | (?P<int>\d+)
    | (?P<ident>[A-Za-z_][A-Za-z0-9_']*)
    | (?P<atbrace>@\{)
    | (?P<atbracket>@\[)
    | (?P<atat>@@)
    | (?P<arrow>->)
    | (?P<punct>[\\={}()\[\],;#@~])
    """,
    re.VERBOSE,
)

_PUNCT = {
    "\\": TokenKind.LAMBDA,
    "=": TokenKind.EQUALS,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMI,
    "#": TokenKind.HASH,
    "@": TokenKind.AT,
    "~": TokenKind.TILDE,
}


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; the result always ends with an EOF token."""
    tokens: list[Token] = []
    position = 0
    line = 1
    line_start = 0
    length = len(source)
    while position < length:
        match = _TOKEN_RE.match(source, position)
        if match is None:
            span = Span(position, position + 1, line, position - line_start + 1)
            raise LexError(
                f"unexpected character {source[position]!r} at {span}", span
            )
        position = match.end()
        kind_name = match.lastgroup
        text = match.group()
        if kind_name == "nl":
            line += 1
            line_start = position
            continue
        if kind_name in ("ws", "comment"):
            continue
        span = Span(match.start(), position, line, match.start() - line_start + 1)
        if kind_name == "int":
            tokens.append(Token(TokenKind.INT, text, span))
        elif kind_name == "ident":
            tokens.append(Token(KEYWORDS.get(text, TokenKind.IDENT), text, span))
        elif kind_name == "atbrace":
            tokens.append(Token(TokenKind.AT_BRACE, text, span))
        elif kind_name == "atbracket":
            tokens.append(Token(TokenKind.AT_BRACKET, text, span))
        elif kind_name == "atat":
            tokens.append(Token(TokenKind.AT_AT, text, span))
        elif kind_name == "arrow":
            tokens.append(Token(TokenKind.ARROW, text, span))
        else:
            tokens.append(Token(_PUNCT[text], text, span))
    tokens.append(
        Token(TokenKind.EOF, "", Span(length, length, line, length - line_start + 1))
    )
    return tokens
