"""Modules: named top-level declarations (the Fig. 9 workload shape).

The paper's evaluation workload is not one closed expression but a *module*
of hundreds of top-level decoder declarations.  This layer gives the
reproduction the same granularity:

* :class:`Decl` — one named top-level declaration ``name = expr``,
* :class:`Module` — an ordered sequence of declarations (later ones may
  reference earlier ones; a declaration may reference itself recursively),
* :func:`parse_module` — parses module sources.  Three surface forms are
  accepted, so every existing program is also a module:

  1. a top-level binding sequence ``f x = e1; g = e2; ...`` (optionally
     introduced by ``let`` and optionally closed by ``in body``, i.e. the
     existing let-sequence sugar still parses),
  2. a ``let ... in body`` expression, whose outer let-chain is lifted
     into declarations,
  3. any other closed expression, which becomes the sole declaration.

  A trailing body expression becomes a final declaration named ``it``
  (:data:`MAIN_DECL`).

Declarations carry a *fingerprint* (a content hash of the pretty-printed
expression, spans excluded) and the module computes the dependency
relation between declarations — the inputs to the per-declaration result
cache of :class:`repro.infer.session.InferSession`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import cached_property

from .ast import Expr, Let, Span, Var, NO_SPAN, free_variables
from .lexer import TokenKind, tokenize
from .parser import ParseError, _Parser
from .pretty import pretty

#: Name given to the anonymous trailing body of a module source.
MAIN_DECL = "it"


@dataclass(frozen=True)
class Decl:
    """One top-level declaration ``name = expr``.

    ``expr`` may reference ``name`` recursively (Milner-Mycroft let) and
    any declaration that precedes it in the module.
    """

    name: str
    expr: Expr
    span: Span = field(default=NO_SPAN, compare=False)

    @cached_property
    def fingerprint(self) -> str:
        """Content hash of the declaration, independent of source spans."""
        payload = f"{self.name} = {pretty(self.expr)}"
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def __repr__(self) -> str:
        return f"Decl({self.name!r})"


class Module:
    """An ordered sequence of uniquely named top-level declarations."""

    __slots__ = ("decls", "_by_name")

    def __init__(self, decls: tuple[Decl, ...] | list[Decl]) -> None:
        self.decls = tuple(decls)
        self._by_name: dict[str, Decl] = {}
        for decl in self.decls:
            if decl.name in self._by_name:
                raise ParseError(
                    f"duplicate top-level declaration {decl.name!r} "
                    f"at {decl.span}",
                    decl.span,
                )
            self._by_name[decl.name] = decl

    # -- container protocol ---------------------------------------------
    def __len__(self) -> int:
        return len(self.decls)

    def __iter__(self):
        return iter(self.decls)

    def __getitem__(self, name: str) -> Decl:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> tuple[str, ...]:
        return tuple(decl.name for decl in self.decls)

    # -- dependency structure -------------------------------------------
    def dependencies(self) -> dict[str, tuple[str, ...]]:
        """Direct dependencies of each declaration, in declaration order.

        A dependency is a free variable of the declaration body that names
        an *earlier* declaration (self-references are recursion, not
        dependencies; scoping is sequential, so later names cannot be
        referenced).
        """
        out: dict[str, tuple[str, ...]] = {}
        seen: dict[str, int] = {}
        for index, decl in enumerate(self.decls):
            free = free_variables(decl.expr)
            deps = tuple(
                earlier.name
                for earlier in self.decls[:index]
                if earlier.name in free
            )
            out[decl.name] = deps
            seen[decl.name] = index
        return out

    def dependents(self) -> dict[str, frozenset[str]]:
        """Transitive dependents: decls to re-check when a decl changes."""
        deps = self.dependencies()
        downstream: dict[str, set[str]] = {d.name: set() for d in self.decls}
        for decl in self.decls:
            for dep in deps[decl.name]:
                downstream[dep].add(decl.name)
        # Propagate transitively (decls are topologically ordered already,
        # so one reverse pass suffices).
        for decl in reversed(self.decls):
            expanded = set(downstream[decl.name])
            for dependent in downstream[decl.name]:
                expanded |= downstream[dependent]
            downstream[decl.name] = expanded
        return {name: frozenset(users) for name, users in downstream.items()}

    # -- edits ------------------------------------------------------------
    def with_decl(self, name: str, expr: Expr) -> "Module":
        """A copy of this module with declaration ``name`` rebound."""
        if name not in self._by_name:
            raise KeyError(f"no declaration {name!r} in module")
        return Module(
            tuple(
                Decl(decl.name, expr, decl.span)
                if decl.name == name
                else decl
                for decl in self.decls
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Module({', '.join(self.names())})"


def module_to_expr(module: Module) -> Expr:
    """The module as one closed expression (nested Milner-Mycroft lets).

    The body of the innermost let is the last declaration's variable, so
    typing the expression types every declaration (each outer binding is
    in scope of — though possibly unused by — the body).
    """
    if not module.decls:
        raise ValueError("cannot convert an empty module to an expression")
    last = module.decls[-1]
    body: Expr = Var(last.name, span=last.span)
    for decl in reversed(module.decls):
        body = Let(decl.name, decl.expr, body, span=decl.span)
    return body


def module_from_expr(expr: Expr, main: str = MAIN_DECL) -> Module:
    """Lift the outer let-chain of ``expr`` into declarations.

    The chain stops at the first non-``Let`` node or at a rebinding of an
    already-lifted name; the remaining body becomes a final declaration
    named ``main`` (dropped when it is just a reference to the last
    lifted declaration, the inverse of :func:`module_to_expr`).
    """
    decls: list[Decl] = []
    names: set[str] = set()
    node = expr
    while isinstance(node, Let) and node.name not in names:
        decls.append(Decl(node.name, node.bound, node.span))
        names.add(node.name)
        node = node.body
    if decls and isinstance(node, Var) and node.name == decls[-1].name:
        return Module(decls)
    name = main
    while name in names:
        name += "_"
    decls.append(Decl(name, node, node.span))
    return Module(decls)


def _starts_with_binding(source: str) -> bool:
    """True if the source opens with ``IDENT IDENT* =`` (a binding head)."""
    try:
        tokens = tokenize(source)
    except Exception:
        return False
    index = 0
    if tokens and tokens[0].kind is TokenKind.KW_LET:
        index = 1
    if index >= len(tokens) or tokens[index].kind is not TokenKind.IDENT:
        return False
    while index < len(tokens) and tokens[index].kind is TokenKind.IDENT:
        index += 1
    return index < len(tokens) and tokens[index].kind is TokenKind.EQUALS


def parse_module(source: str, main: str = MAIN_DECL) -> Module:
    """Parse a module source; raise :class:`ParseError` on junk.

    Accepts a top-level binding sequence (with or without the leading
    ``let`` and trailing ``in body``) or any closed expression (which
    becomes a single declaration named ``main``).
    """
    if not _starts_with_binding(source):
        parser = _Parser(tokenize(source))
        expr = parser.expr()
        trailing = parser.peek()
        if trailing.kind is not TokenKind.EOF:
            raise ParseError(
                f"unexpected {trailing.kind.value!r} ({trailing.text!r}) "
                f"after expression at {trailing.span}",
                trailing.span,
            )
        return module_from_expr(expr, main=main)
    parser = _Parser(tokenize(source))
    if parser.at(TokenKind.KW_LET):
        parser.advance()
    decls: list[Decl] = []
    span = parser.peek().span
    name, bound = parser.binding()
    decls.append(Decl(name, bound, span))
    while parser.at(TokenKind.SEMI):
        parser.advance()
        if parser.at(TokenKind.KW_IN) or parser.at(TokenKind.EOF):
            break  # tolerate a trailing semicolon
        span = parser.peek().span
        name, bound = parser.binding()
        decls.append(Decl(name, bound, span))
    if parser.at(TokenKind.KW_IN):
        parser.advance()
        span = parser.peek().span
        body = parser.expr()
        taken = {decl.name for decl in decls}
        # The body's own outer let-chain is lifted too, so
        # ``let a = 1 in let b = a in e`` and ``let a = 1; b = a in e``
        # produce the same module.
        while isinstance(body, Let) and body.name not in taken:
            decls.append(Decl(body.name, body.bound, body.span))
            taken.add(body.name)
            body = body.body
        body_name = main
        while body_name in taken:
            body_name += "_"
        decls.append(Decl(body_name, body, span))
    trailing = parser.peek()
    if trailing.kind is not TokenKind.EOF:
        raise ParseError(
            f"unexpected {trailing.kind.value!r} ({trailing.text!r}) after "
            f"module declarations at {trailing.span}",
            trailing.span,
        )
    return Module(decls)
