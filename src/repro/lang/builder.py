"""Combinators for building ASTs programmatically.

Used by the tests, the examples and the GDSL-style workload generator
(:mod:`repro.gdsl.generator`) to assemble programs without going through
the concrete syntax.

    >>> from repro.lang.builder import lam, let, var, select, update, empty
    >>> program = let("f", lam("s", select("foo")(update("foo", 42)(var("s")))),
    ...               var("f")(empty()))
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Union

from .ast import (
    App,
    BoolLit,
    Concat,
    EmptyRec,
    Expr,
    If,
    IntLit,
    Lam,
    Let,
    ListLit,
    Remove,
    Rename,
    Select,
    Update,
    Var,
    When,
)

ExprLike = Union[Expr, int, bool, str]


def _coerce(value: ExprLike) -> Expr:
    """Lift Python literals into AST nodes (str -> Var, int/bool -> lit)."""
    if isinstance(value, _BuilderExpr):
        return value.ast
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):  # bool before int: bool is a subclass of int
        return BoolLit(value)
    if isinstance(value, int):
        return IntLit(value)
    if isinstance(value, str):
        return Var(value)
    raise TypeError(f"cannot coerce {value!r} to an expression")


def var(name: str) -> "_BuilderExpr":
    """A variable reference."""
    return _BuilderExpr(Var(name))


def lit(value: Union[int, bool]) -> "_BuilderExpr":
    """An integer or Boolean literal."""
    return _BuilderExpr(_coerce(value))


def empty() -> "_BuilderExpr":
    """The empty record ``{}``."""
    return _BuilderExpr(EmptyRec())


def select(label: str) -> "_BuilderExpr":
    """The field selector function ``#label``."""
    return _BuilderExpr(Select(label))


def update(label: str, value: ExprLike) -> "_BuilderExpr":
    """The field update function ``@{label = value}``."""
    return _BuilderExpr(Update(label, _coerce(value)))


def remove(label: str) -> "_BuilderExpr":
    """The field removal function ``~label``."""
    return _BuilderExpr(Remove(label))


def rename(old_label: str, new_label: str) -> "_BuilderExpr":
    """The field renaming function ``@[old -> new]``."""
    return _BuilderExpr(Rename(old_label, new_label))


def lam(params: Union[str, Iterable[str]], body: ExprLike) -> "_BuilderExpr":
    """``\\params -> body``; accepts one name or an iterable of names."""
    if isinstance(params, str):
        params = (params,)
    expr = _coerce(body)
    for param in reversed(tuple(params)):
        expr = Lam(param, expr)
    return _BuilderExpr(expr)


def let(name: str, bound: ExprLike, body: ExprLike) -> "_BuilderExpr":
    """``let name = bound in body`` (recursive per Milner-Mycroft)."""
    return _BuilderExpr(Let(name, _coerce(bound), _coerce(body)))


def if_(cond: ExprLike, then: ExprLike, orelse: ExprLike) -> "_BuilderExpr":
    """``if cond then e1 else e2`` (scrutinee must type as Int)."""
    return _BuilderExpr(If(_coerce(cond), _coerce(then), _coerce(orelse)))


def when(
    label: str, record: str, then: ExprLike, orelse: ExprLike
) -> "_BuilderExpr":
    """``when label in record then e1 else e2`` (Fig. 8)."""
    return _BuilderExpr(When(label, record, _coerce(then), _coerce(orelse)))


def concat(left: ExprLike, right: ExprLike) -> "_BuilderExpr":
    """Asymmetric concatenation ``left @ right`` (right wins)."""
    return _BuilderExpr(Concat(_coerce(left), _coerce(right)))


def symcat(left: ExprLike, right: ExprLike) -> "_BuilderExpr":
    """Symmetric concatenation ``left @@ right`` (sharing is an error)."""
    return _BuilderExpr(Concat(_coerce(left), _coerce(right), symmetric=True))


def list_(*items: ExprLike) -> "_BuilderExpr":
    """A list literal ``[e1, ..., en]``."""
    return _BuilderExpr(ListLit(tuple(_coerce(item) for item in items)))


def record(**fields: ExprLike) -> "_BuilderExpr":
    """Record literal sugar: ``record(foo=1, bar=2)``."""
    expr: Expr = EmptyRec()
    for label, value in fields.items():
        expr = App(Update(label, _coerce(value)), expr)
    return _BuilderExpr(expr)


def app(fn: ExprLike, *arguments: ExprLike) -> "_BuilderExpr":
    """Curried application ``fn a1 ... an``."""
    expr = _coerce(fn)
    for argument in arguments:
        expr = App(expr, _coerce(argument))
    return _BuilderExpr(expr)


class _BuilderExpr:
    """A thin wrapper making builder results callable (application).

    The wrapper unwraps transparently: every builder accepts wrapped and
    unwrapped expressions, and ``.ast`` gives the underlying node.
    """

    __slots__ = ("ast",)

    def __init__(self, node: Expr) -> None:
        while isinstance(node, _BuilderExpr):  # defensive unwrap
            node = node.ast
        self.ast = node

    def __call__(self, *arguments: ExprLike) -> "_BuilderExpr":
        expr = self.ast
        for argument in arguments:
            expr = App(expr, _coerce(argument))
        return _BuilderExpr(expr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from .pretty import pretty

        return f"<builder {pretty(self.ast)}>"


def build(value: ExprLike) -> Expr:
    """Extract a plain AST from a builder value (or coerce a literal)."""
    if isinstance(value, _BuilderExpr):
        return value.ast
    return _coerce(value)
