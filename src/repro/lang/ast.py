"""Abstract syntax of the record calculus L(E) (Fig. 1 + Sect. 5 extensions).

The core grammar of the paper::

    e ::= x | \\x . e | e1 e2 | let x = e1 in e2
        | 0 | 1 | ... | {} | @{N = e} | #N
        | if e then e else e

plus the record operations discussed in Sect. 5::

    e1 @ e2                       -- asymmetric concatenation
    e1 @@ e2                      -- symmetric concatenation
    \\\\N                         -- field removal (a function, like #N)
    when N in x then e1 else e2   -- branch on field presence

Every node records an optional source ``span`` used by error diagnostics.
Nodes are immutable (frozen dataclasses) and hashable by identity of their
content, so they can be used as dictionary keys by analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union


@dataclass(frozen=True)
class Span:
    """Half-open source region ``[start, end)`` in character offsets."""

    start: int
    end: int
    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


NO_SPAN = Span(0, 0, 0, 0)


@dataclass(frozen=True)
class Expr:
    """Base class of all expression nodes."""

    span: Span = field(default=NO_SPAN, compare=False, kw_only=True)


@dataclass(frozen=True)
class Var(Expr):
    """A variable occurrence ``x`` (λ- or let-bound, or a builtin)."""

    name: str


@dataclass(frozen=True)
class Lam(Expr):
    """Abstraction ``\\x . body``."""

    param: str
    body: Expr


@dataclass(frozen=True)
class App(Expr):
    """Application ``fn arg``."""

    fn: Expr
    arg: Expr


@dataclass(frozen=True)
class Let(Expr):
    """``let name = bound in body``; ``name`` may recur in ``bound``.

    The paper's let is Milner-Mycroft: the bound expression may use ``name``
    polymorphically (polymorphic recursion), handled by the (LETREC)
    fixpoint.
    """

    name: str
    bound: Expr
    body: Expr


@dataclass(frozen=True)
class IntLit(Expr):
    """Integer constant."""

    value: int


@dataclass(frozen=True)
class BoolLit(Expr):
    """Boolean constant (used by Sect. 4.4 example programs)."""

    value: bool


@dataclass(frozen=True)
class ListLit(Expr):
    """List literal ``[e1, ..., en]`` (polymorphic lists, Sect. 2.1)."""

    items: tuple[Expr, ...]


@dataclass(frozen=True)
class EmptyRec(Expr):
    """The empty record ``{}`` : ``{a.Abs}`` / flow ``¬fa``."""


@dataclass(frozen=True)
class Select(Expr):
    """Field selector ``#N`` — a *function* expecting a record."""

    label: str


@dataclass(frozen=True)
class Update(Expr):
    """Field update/addition ``@{N = e}`` — a function on records."""

    label: str
    value: Expr


@dataclass(frozen=True)
class Remove(Expr):
    """Field removal ``\\\\N`` — a function dropping N from its argument.

    Sect. 6: "Our solution was to define an operator to remove a record
    field."  Typeable with 2-variable Horn clauses (Sect. 5).
    """

    label: str


@dataclass(frozen=True)
class Rename(Expr):
    """Field renaming ``@[N -> M]`` — a function renaming field N to M.

    Sect. 5: renaming is implementable with 2-variable Horn clauses.
    """

    old_label: str
    new_label: str


@dataclass(frozen=True)
class If(Expr):
    """Conditional; the scrutinee must have type Int (Fig. 6)."""

    cond: Expr
    then: Expr
    orelse: Expr


@dataclass(frozen=True)
class Concat(Expr):
    """Record concatenation ``left @ right`` (asymmetric by default).

    Asymmetric: on a common field the *right* record wins.  With
    ``symmetric=True`` the operation is ``@@``: sharing a field is a type
    error (Sect. 5), and the flow leaves the Horn fragment.
    """

    left: Expr
    right: Expr
    symmetric: bool = False


@dataclass(frozen=True)
class When(Expr):
    """``when N in x then e1 else e2`` — branch on field presence (Fig. 8).

    ``record`` must be a variable per the paper's rule (the test refines the
    *environment entry* of x).
    """

    label: str
    record: str
    then: Expr
    orelse: Expr


Atom = Union[Var, IntLit, BoolLit, EmptyRec, Select]


def record_literal(
    fields: dict[str, Expr], *, span: Span = NO_SPAN
) -> Expr:
    """Desugar ``{n1 = e1, ..., nk = ek}`` to updates applied to ``{}``.

    ``{foo = 1, bar = 2}`` becomes ``@{bar=2} (@{foo=1} {})``; the order of
    application is the textual field order.
    """
    expr: Expr = EmptyRec(span=span)
    for label, value in fields.items():
        expr = App(Update(label, value, span=span), expr, span=span)
    return expr


def free_variables(expr: Expr) -> frozenset[str]:
    """The free program variables of ``expr``.

    ``when N in x`` counts ``x`` as a free occurrence.
    """
    if isinstance(expr, Var):
        return frozenset((expr.name,))
    if isinstance(expr, Lam):
        return free_variables(expr.body) - {expr.param}
    if isinstance(expr, App):
        return free_variables(expr.fn) | free_variables(expr.arg)
    if isinstance(expr, Let):
        return (free_variables(expr.bound) | free_variables(expr.body)) - {
            expr.name
        }
    if isinstance(expr, ListLit):
        out: frozenset[str] = frozenset()
        for item in expr.items:
            out |= free_variables(item)
        return out
    if isinstance(expr, Update):
        return free_variables(expr.value)
    if isinstance(expr, If):
        return (
            free_variables(expr.cond)
            | free_variables(expr.then)
            | free_variables(expr.orelse)
        )
    if isinstance(expr, Concat):
        return free_variables(expr.left) | free_variables(expr.right)
    if isinstance(expr, When):
        return (
            frozenset((expr.record,))
            | free_variables(expr.then)
            | free_variables(expr.orelse)
        )
    return frozenset()


def subexpressions(expr: Expr):
    """Yield ``expr`` and all its subexpressions, pre-order."""
    yield expr
    if isinstance(expr, Lam):
        yield from subexpressions(expr.body)
    elif isinstance(expr, App):
        yield from subexpressions(expr.fn)
        yield from subexpressions(expr.arg)
    elif isinstance(expr, Let):
        yield from subexpressions(expr.bound)
        yield from subexpressions(expr.body)
    elif isinstance(expr, ListLit):
        for item in expr.items:
            yield from subexpressions(item)
    elif isinstance(expr, Update):
        yield from subexpressions(expr.value)
    elif isinstance(expr, If):
        yield from subexpressions(expr.cond)
        yield from subexpressions(expr.then)
        yield from subexpressions(expr.orelse)
    elif isinstance(expr, Concat):
        yield from subexpressions(expr.left)
        yield from subexpressions(expr.right)
    elif isinstance(expr, When):
        yield from subexpressions(expr.then)
        yield from subexpressions(expr.orelse)


def size(expr: Expr) -> int:
    """Number of AST nodes."""
    return sum(1 for _ in subexpressions(expr))
