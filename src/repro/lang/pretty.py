"""Pretty printer for expressions; round-trips with the parser.

``parse(pretty(e))`` is structurally equal to ``e`` (modulo spans and
record-literal desugaring, which the printer does not re-sugar).  The test
suite checks this property with random ASTs.
"""

from __future__ import annotations

from .ast import (
    App,
    BoolLit,
    Concat,
    EmptyRec,
    Expr,
    If,
    IntLit,
    Lam,
    Let,
    ListLit,
    Remove,
    Rename,
    Select,
    Update,
    Var,
    When,
)

# Precedence levels: 0 = lowest (lambda/let/if/when), 1 = concat, 2 =
# application, 3 = atom.
_LOW, _CONCAT, _APP, _ATOM = 0, 1, 2, 3


def _parenthesize(text: str, level: int, context: int) -> str:
    return f"({text})" if level < context else text


def pretty(expr: Expr, context: int = _LOW) -> str:
    """Render ``expr`` with minimal parentheses."""
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, EmptyRec):
        return "{}"
    if isinstance(expr, Select):
        return f"#{expr.label}"
    if isinstance(expr, Remove):
        return f"~{expr.label}"
    if isinstance(expr, Rename):
        return f"@[{expr.old_label} -> {expr.new_label}]"
    if isinstance(expr, Update):
        return f"@{{{expr.label} = {pretty(expr.value, _LOW)}}}"
    if isinstance(expr, ListLit):
        inner = ", ".join(pretty(item, _LOW) for item in expr.items)
        return f"[{inner}]"
    if isinstance(expr, Lam):
        params = [expr.param]
        body = expr.body
        while isinstance(body, Lam):
            params.append(body.param)
            body = body.body
        text = f"\\{' '.join(params)} -> {pretty(body, _LOW)}"
        return _parenthesize(text, _LOW, context)
    if isinstance(expr, Let):
        text = (
            f"let {expr.name} = {pretty(expr.bound, _LOW)} "
            f"in {pretty(expr.body, _LOW)}"
        )
        return _parenthesize(text, _LOW, context)
    if isinstance(expr, If):
        text = (
            f"if {pretty(expr.cond, _LOW)} then {pretty(expr.then, _LOW)} "
            f"else {pretty(expr.orelse, _LOW)}"
        )
        return _parenthesize(text, _LOW, context)
    if isinstance(expr, When):
        text = (
            f"when {expr.label} in {expr.record} "
            f"then {pretty(expr.then, _LOW)} else {pretty(expr.orelse, _LOW)}"
        )
        return _parenthesize(text, _LOW, context)
    if isinstance(expr, Concat):
        operator = "@@" if expr.symmetric else "@"
        text = (
            f"{pretty(expr.left, _CONCAT)} {operator} "
            f"{pretty(expr.right, _APP)}"
        )
        return _parenthesize(text, _CONCAT, context)
    if isinstance(expr, App):
        text = f"{pretty(expr.fn, _APP)} {pretty(expr.arg, _ATOM)}"
        return _parenthesize(text, _APP, context)
    raise TypeError(f"unknown expression node: {expr!r}")
