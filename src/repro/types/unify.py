"""Unification of polytypes, including Rémy-style row unification.

``mgu`` computes the most general unifier of two stripped type terms (or two
whole environments, pointwise).  Records unify by rewriting rows: fields
present on only one side are pushed into the other side's row variable, and
two open tails are unified through a fresh common tail (Rémy [19]).

Occurs checks cover both type variables and row variables; the paper's
Sect. 6 describes a real occurrence of the row occurs check (a monadic
action stored inside the state record of the monad itself).
"""

from __future__ import annotations

from typing import Optional

from .subst import Subst
from .terms import (
    Field,
    Row,
    TBool,
    TCon,
    TFun,
    TInt,
    TList,
    TRec,
    TVar,
    Type,
    VarSupply,
)


class UnifyError(Exception):
    """Unification failure; carries the two clashing subterms."""

    def __init__(self, message: str, left: Optional[Type] = None,
                 right: Optional[Type] = None) -> None:
        super().__init__(message)
        self.left = left
        self.right = right


class OccursCheckError(UnifyError):
    """A variable would have to contain itself (infinite type)."""


class _Unifier:
    """Mutable unification state: triangular bindings for both var kinds."""

    def __init__(self, supply: VarSupply) -> None:
        self.supply = supply
        self.type_bindings: dict[int, Type] = {}
        self.row_bindings: dict[int, tuple[tuple[Field, ...], Optional[Row]]] = {}

    # -- walking ---------------------------------------------------------
    def walk(self, t: Type) -> Type:
        """Chase top-level type-variable bindings."""
        while isinstance(t, TVar) and t.var in self.type_bindings:
            t = self.type_bindings[t.var]
        return t

    def flatten_record(self, record: TRec) -> tuple[list[Field], Optional[Row]]:
        """Resolve row bindings so the tail is unbound or absent.

        A label can arrive twice when a bound row var also occurs inside
        one of the record's field types (the binding's fields then
        overlap the literal ones); the two copies describe the same
        field, so their types are unified and one copy kept.
        """
        fields: list[Field] = []
        indices: dict[str, int] = {}

        def add(field: Field) -> None:
            index = indices.get(field.label)
            if index is None:
                indices[field.label] = len(fields)
                fields.append(field)
            else:
                self.unify(fields[index].type, field.type)

        for field in record.fields:
            add(field)
        row = record.row
        while row is not None and row.var in self.row_bindings:
            extra, tail = self.row_bindings[row.var]
            for field in extra:
                add(field)
            row = tail
        return fields, row

    # -- occurs checks -----------------------------------------------------
    def occurs_type(self, var: int, t: Type) -> bool:
        t = self.walk(t)
        if isinstance(t, TVar):
            return t.var == var
        if isinstance(t, TList):
            return self.occurs_type(var, t.elem)
        if isinstance(t, TFun):
            return self.occurs_type(var, t.arg) or self.occurs_type(var, t.res)
        if isinstance(t, TRec):
            fields, _ = self.flatten_record(t)
            return any(self.occurs_type(var, f.type) for f in fields)
        return False

    def occurs_row(self, var: int, t: Type) -> bool:
        t = self.walk(t)
        if isinstance(t, TList):
            return self.occurs_row(var, t.elem)
        if isinstance(t, TFun):
            return self.occurs_row(var, t.arg) or self.occurs_row(var, t.res)
        if isinstance(t, TRec):
            fields, row = self.flatten_record(t)
            if row is not None and row.var == var:
                return True
            return any(self.occurs_row(var, f.type) for f in fields)
        return False

    # -- unification -------------------------------------------------------
    def unify(self, t1: Type, t2: Type) -> None:
        t1 = self.walk(t1)
        t2 = self.walk(t2)
        if isinstance(t1, TVar) and isinstance(t2, TVar) and t1.var == t2.var:
            return
        if isinstance(t1, TVar):
            self.bind_type(t1.var, t2)
            return
        if isinstance(t2, TVar):
            self.bind_type(t2.var, t1)
            return
        if isinstance(t1, TInt) and isinstance(t2, TInt):
            return
        if isinstance(t1, TBool) and isinstance(t2, TBool):
            return
        if isinstance(t1, TCon) and isinstance(t2, TCon) and t1.name == t2.name:
            return
        if isinstance(t1, TList) and isinstance(t2, TList):
            self.unify(t1.elem, t2.elem)
            return
        if isinstance(t1, TFun) and isinstance(t2, TFun):
            self.unify(t1.arg, t2.arg)
            self.unify(t1.res, t2.res)
            return
        if isinstance(t1, TRec) and isinstance(t2, TRec):
            self.unify_records(t1, t2)
            return
        raise UnifyError(
            f"cannot unify {t1!r} with {t2!r} (constructor clash)", t1, t2
        )

    def bind_type(self, var: int, t: Type) -> None:
        if self.occurs_type(var, t):
            raise OccursCheckError(
                f"occurs check: type variable would contain itself in {t!r}",
                TVar(var),
                t,
            )
        self.type_bindings[var] = t

    def bind_row(
        self, var: int, fields: list[Field], tail: Optional[Row]
    ) -> None:
        # Unifying the common field types in ``unify_records`` can bind
        # a tail that was flattened before the loop ran; overwriting the
        # binding here would silently drop it, so reconcile the two row
        # descriptions by unifying them as records instead.
        existing = self.row_bindings.get(var)
        if existing is not None:
            self.unify(TRec(existing[0], existing[1]),
                       TRec(tuple(fields), tail))
            return
        for f in fields:
            if self.occurs_row(var, f.type):
                raise OccursCheckError(
                    f"occurs check: row variable would contain itself via "
                    f"field {f.label!r}",
                )
        self.row_bindings[var] = (tuple(fields), tail)

    def unify_records(self, r1: TRec, r2: TRec) -> None:
        fields1, tail1 = self.flatten_record(r1)
        fields2, tail2 = self.flatten_record(r2)
        by_label1 = {f.label: f for f in fields1}
        by_label2 = {f.label: f for f in fields2}
        if len(by_label1) != len(fields1) or len(by_label2) != len(fields2):
            raise UnifyError(f"record with duplicate labels: {r1!r} / {r2!r}")
        only1 = [f for f in fields1 if f.label not in by_label2]
        only2 = [f for f in fields2 if f.label not in by_label1]
        for label, f1 in by_label1.items():
            f2 = by_label2.get(label)
            if f2 is not None:
                self.unify(f1.type, f2.type)
        if tail1 is not None and tail2 is not None and tail1.var == tail2.var:
            if only1 or only2:
                missing = [f.label for f in only1 + only2]
                raise UnifyError(
                    f"records share a row but differ in fields {missing}",
                    r1,
                    r2,
                )
            return
        if tail2 is None and only1:
            raise UnifyError(
                f"record {r2!r} lacks fields "
                f"{[f.label for f in only1]} and has no row to extend",
                r1,
                r2,
            )
        if tail1 is None and only2:
            raise UnifyError(
                f"record {r1!r} lacks fields "
                f"{[f.label for f in only2]} and has no row to extend",
                r1,
                r2,
            )
        if tail1 is None and tail2 is None:
            return
        if tail1 is None:
            assert tail2 is not None
            self.bind_row(tail2.var, only1, None)
            return
        if tail2 is None:
            self.bind_row(tail1.var, only2, None)
            return
        fresh = Row(self.supply.fresh_row_var())
        self.bind_row(tail1.var, only2, fresh)
        self.bind_row(tail2.var, only1, fresh)

    # -- extraction ----------------------------------------------------------
    def resolve(self, t: Type) -> Type:
        """Fully apply the accumulated bindings to ``t``, stripping flags.

        Unification itself is flag-agnostic (it may be fed flagged terms
        directly, saving a ⇓RP pass over every environment entry), but the
        extracted substitution must be plain: σ ∈ V → P (Sect. 2.4) —
        ``applyS`` freshly decorates every replacement copy.
        """
        t = self.walk(t)
        if isinstance(t, TVar):
            return TVar(t.var) if t.flag is not None else t
        if isinstance(t, TList):
            return TList(self.resolve(t.elem))
        if isinstance(t, TFun):
            return TFun(self.resolve(t.arg), self.resolve(t.res))
        if isinstance(t, TRec):
            fields, row = self.flatten_record(t)
            resolved = tuple(
                Field(f.label, self.resolve(f.type)) for f in fields
            )
            if row is not None and row.flag is not None:
                row = Row(row.var)
            return TRec(resolved, row)
        return t

    def to_subst(self) -> Subst:
        """Produce an idempotent substitution from the bindings.

        Resolution itself can grow the binding maps: flattening a row
        whose bound var also occurs inside a field type merges the
        duplicate label by unifying the two copies.  Extract again until
        no resolution adds a binding, so the result stays idempotent.
        """
        while True:
            before = (len(self.type_bindings), len(self.row_bindings))
            types = {
                var: self.resolve(TVar(var))
                for var in list(self.type_bindings)
            }
            rows = {}
            for var in list(self.row_bindings):
                fields, tail = self.flatten_record(TRec((), Row(var)))
                rows[var] = (
                    tuple(
                        Field(f.label, self.resolve(f.type))
                        for f in fields
                    ),
                    tail,
                )
            if (len(self.type_bindings), len(self.row_bindings)) == before:
                return Subst(types, rows)


def mgu(t1: Type, t2: Type, supply: VarSupply) -> Subst:
    """Most general unifier of two stripped types.

    Fresh row variables needed by row rewriting are drawn from ``supply``.
    Raises :class:`UnifyError` (or :class:`OccursCheckError`) on failure.
    """
    unifier = _Unifier(supply)
    unifier.unify(t1, t2)
    return unifier.to_subst()


def mgu_env(
    env1: dict[str, Type], env2: dict[str, Type], supply: VarSupply
) -> Subst:
    """Pointwise mgu of two environments with equal domains.

    This is the unification underlying the environment meet (Sect. 4.3):
    ``mgu(⇓(t1; ρ1), ⇓(t2; ρ2))`` unifies the κ-bound types *and* every
    program variable's type.
    """
    if set(env1) != set(env2):
        raise UnifyError(
            f"environments bind different variables: "
            f"{sorted(set(env1) ^ set(env2))}"
        )
    unifier = _Unifier(supply)
    for name in env1:
        unifier.unify(env1[name], env2[name])
    return unifier.to_subst()


def unifiable(t1: Type, t2: Type, supply: VarSupply) -> bool:
    """True if the two types unify."""
    try:
        mgu(t1, t2, supply)
    except UnifyError:
        return False
    return True
