"""Type schemes ∀ā. t for let-bound variables.

Generalisation quantifies the type and row variables of the inferred type
that do not occur in the environment ((LETREC) in Fig. 2/3).  Instantiation
for plain polytypes renames the quantified variables to fresh ones; the flow
inference additionally refreshes all flags of the body and expands the flow
formula — that flagged instantiation lives in :mod:`repro.infer.flow`
because it needs the inference state (flag supply and β).
"""

from __future__ import annotations

from dataclasses import dataclass

from .terms import (
    Field,
    Row,
    TFun,
    TList,
    TRec,
    TVar,
    Type,
    VarSupply,
    row_vars,
    type_vars,
)


@dataclass(frozen=True)
class Scheme:
    """∀ quantified-vars . body — the body may carry flags (PR)."""

    quantified_type_vars: frozenset[int]
    quantified_row_vars: frozenset[int]
    body: Type

    def is_monomorphic(self) -> bool:
        """True if nothing is quantified."""
        return not self.quantified_type_vars and not self.quantified_row_vars

    def __repr__(self) -> str:
        from .terms import row_name, var_name

        names = [var_name(v) for v in sorted(self.quantified_type_vars)]
        names += [row_name(v) for v in sorted(self.quantified_row_vars)]
        prefix = f"forall {' '.join(names)} . " if names else ""
        return f"{prefix}{self.body!r}"


def monomorphic(t: Type) -> Scheme:
    """A scheme quantifying nothing (λ-bound variables)."""
    return Scheme(frozenset(), frozenset(), t)


def env_variables(env_types: list[Type]) -> tuple[set[int], set[int]]:
    """All type and row variables of a list of types."""
    tvs: set[int] = set()
    rvs: set[int] = set()
    for t in env_types:
        tvs |= type_vars(t)
        rvs |= row_vars(t)
    return tvs, rvs


def generalize(t: Type, env_types: list[Type]) -> Scheme:
    """∀(vars(t) \\ vars(env)). t — the (LETREC) generalisation step."""
    env_tvs, env_rvs = env_variables(env_types)
    return Scheme(
        frozenset(type_vars(t) - env_tvs),
        frozenset(row_vars(t) - env_rvs),
        t,
    )


def rename_variables(
    t: Type,
    type_map: dict[int, int],
    row_map: dict[int, int],
) -> Type:
    """Rename variables per the two maps; unmapped variables stay put."""
    if isinstance(t, TVar):
        return TVar(type_map.get(t.var, t.var), t.flag)
    if isinstance(t, TList):
        return TList(rename_variables(t.elem, type_map, row_map))
    if isinstance(t, TFun):
        return TFun(
            rename_variables(t.arg, type_map, row_map),
            rename_variables(t.res, type_map, row_map),
        )
    if isinstance(t, TRec):
        fields = tuple(
            Field(f.label, rename_variables(f.type, type_map, row_map), f.flag)
            for f in t.fields
        )
        row = t.row
        if row is not None and row.var in row_map:
            row = Row(row_map[row.var], row.flag)
        return TRec(fields, row)
    return t


def instantiate(scheme: Scheme, supply: VarSupply) -> Type:
    """Fresh renaming of the quantified variables (plain P instantiation).

    Flags, if any, are left untouched — flagged instantiation (which must
    also duplicate flow) is done by the flow engine.
    """
    type_map = {
        v: supply.fresh_type_var() for v in scheme.quantified_type_vars
    }
    row_map = {v: supply.fresh_row_var() for v in scheme.quantified_row_vars}
    return rename_variables(scheme.body, type_map, row_map)
