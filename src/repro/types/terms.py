"""Type terms: monotypes M, polytypes P and flagged polytypes PR.

One class hierarchy represents both P and PR (Sect. 2.1 / 2.3): every flag
position (type-variable occurrence, record field, row variable) carries an
``Optional[int]`` flag.  A term with all flags ``None`` is a plain polytype
(the image of ``⇓RP``); ``decorate``/``strip`` in :mod:`repro.types.project`
convert between the two.

Grammar (t ∈ PR)::

    t ::= a.fa | t1 -> t2 | Int | Bool | [t]
        | {N1.f1 : t1, ..., Nn.fn : tn, r.fr}      -- open record (row var r)
        | {N1.f1 : t1, ..., Nn.fn : tn}            -- closed record

Closed records only arise as monotypes/ground types; the inference itself
always manipulates open rows.  Type variables and row variables draw from
disjoint integer namespaces managed by :class:`VarSupply`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional


class Type:
    """Base class of all type terms."""



@dataclass(frozen=True, slots=True)
class TInt(Type):
    """The integer type ``Int``."""


    def __repr__(self) -> str:
        return "Int"


@dataclass(frozen=True, slots=True)
class TBool(Type):
    """The Boolean type ``Bool`` (used by Sect. 4.4 example programs)."""


    def __repr__(self) -> str:
        return "Bool"


@dataclass(frozen=True, slots=True)
class TCon(Type):
    """A nullary type constructor (e.g. String, or Pre/Abs in the Rémy
    baseline encoding); distinct constructors never unify."""

    name: str

    def __repr__(self) -> str:
        return self.name


INT = TInt()
BOOL = TBool()


@dataclass(frozen=True, slots=True)
class TVar(Type):
    """A type-variable occurrence ``a.fa``; ``flag`` is None in plain P."""

    var: int
    flag: Optional[int] = None


    def __repr__(self) -> str:
        suffix = f".f{self.flag}" if self.flag is not None else ""
        return f"{var_name(self.var)}{suffix}"


@dataclass(frozen=True, slots=True)
class TList(Type):
    """The list type ``[t]``."""

    elem: Type


    def __repr__(self) -> str:
        return f"[{self.elem!r}]"


@dataclass(frozen=True, slots=True)
class TFun(Type):
    """The function type ``t1 -> t2``."""

    arg: Type
    res: Type


    def __repr__(self) -> str:
        arg = f"({self.arg!r})" if isinstance(self.arg, TFun) else f"{self.arg!r}"
        return f"{arg} -> {self.res!r}"


@dataclass(frozen=True, slots=True)
class Field:
    """One record field ``N.fN : t``; ``flag`` is None in plain P."""

    label: str
    type: Type
    flag: Optional[int] = None


    def __repr__(self) -> str:
        suffix = f".f{self.flag}" if self.flag is not None else ""
        return f"{self.label}{suffix} : {self.type!r}"


@dataclass(frozen=True, slots=True)
class Row:
    """An open record tail ``r.fr`` (a row variable with its flag)."""

    var: int
    flag: Optional[int] = None


    def __repr__(self) -> str:
        suffix = f".f{self.flag}" if self.flag is not None else ""
        return f"{row_name(self.var)}{suffix}"


@dataclass(frozen=True, slots=True)
class TRec(Type):
    """A record type; ``fields`` are kept sorted by label, ``row`` may be None.

    ``row is None`` means the record is *closed* (exactly these fields) —
    that only happens in ground/monotype positions.  All records built by
    the inference are open.
    """

    fields: tuple[Field, ...]
    row: Optional[Row] = None


    def __post_init__(self) -> None:
        labels = [f.label for f in self.fields]
        if labels != sorted(labels):
            object.__setattr__(
                self, "fields", tuple(sorted(self.fields, key=lambda f: f.label))
            )
            labels.sort()
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate record labels: {labels}")

    def field(self, label: str) -> Optional[Field]:
        """The field named ``label``, or None."""
        for f in self.fields:
            if f.label == label:
                return f
        return None

    def labels(self) -> tuple[str, ...]:
        """The labels of the explicit fields, sorted."""
        return tuple(f.label for f in self.fields)

    def __repr__(self) -> str:
        parts = [repr(f) for f in self.fields]
        if self.row is not None:
            parts.append(repr(self.row))
        return "{" + ", ".join(parts) + "}"


def rec(fields: dict[str, Type] | tuple[Field, ...], row: Optional[Row] = None) -> TRec:
    """Convenience constructor for record types."""
    if isinstance(fields, dict):
        fields = tuple(Field(label, t) for label, t in fields.items())
    return TRec(tuple(fields), row)


def fun(*types: Type) -> Type:
    """Right-associated function type: ``fun(a, b, c) == a -> (b -> c)``."""
    if not types:
        raise ValueError("fun() needs at least one type")
    result = types[-1]
    for t in reversed(types[:-1]):
        result = TFun(t, result)
    return result


# ---------------------------------------------------------------------------
# variable supply and pretty names
# ---------------------------------------------------------------------------
class VarSupply:
    """Issues fresh type-variable and row-variable identifiers."""


    def __init__(self) -> None:
        self._next_type = 0
        self._next_row = 0

    def fresh_type_var(self) -> int:
        var = self._next_type
        self._next_type += 1
        return var

    def fresh_row_var(self) -> int:
        var = self._next_row
        self._next_row += 1
        return var


def var_name(var: int) -> str:
    """Human-readable name for a type variable: a, b, ..., z, a1, b1, ..."""
    letter = chr(ord("a") + var % 26)
    round_ = var // 26
    return letter if round_ == 0 else f"{letter}{round_}"


def row_name(var: int) -> str:
    """Human-readable name for a row variable: r0, r1, ..."""
    return f"r{var}"


# ---------------------------------------------------------------------------
# traversals
# ---------------------------------------------------------------------------
def type_vars(t: Type) -> set[int]:
    """The type variables occurring in ``t``."""
    out: set[int] = set()
    _collect_vars(t, out, None)
    return out


def row_vars(t: Type) -> set[int]:
    """The row variables occurring in ``t``."""
    out: set[int] = set()
    _collect_vars(t, None, out)
    return out


def _collect_vars(
    t: Type, tvs: Optional[set[int]], rvs: Optional[set[int]]
) -> None:
    if isinstance(t, TVar):
        if tvs is not None:
            tvs.add(t.var)
    elif isinstance(t, TList):
        _collect_vars(t.elem, tvs, rvs)
    elif isinstance(t, TFun):
        _collect_vars(t.arg, tvs, rvs)
        _collect_vars(t.res, tvs, rvs)
    elif isinstance(t, TRec):
        for f in t.fields:
            _collect_vars(f.type, tvs, rvs)
        if t.row is not None and rvs is not None:
            rvs.add(t.row.var)


def subterms(t: Type) -> Iterator[Type]:
    """Yield ``t`` and all type subterms, pre-order."""
    yield t
    if isinstance(t, TList):
        yield from subterms(t.elem)
    elif isinstance(t, TFun):
        yield from subterms(t.arg)
        yield from subterms(t.res)
    elif isinstance(t, TRec):
        for f in t.fields:
            yield from subterms(f.type)


def all_flags(t: Type) -> list[int]:
    """Every flag occurring in ``t``, in Def.-1 position order (unsigned)."""
    out: list[int] = []
    _collect_flags(t, out)
    return out


def _collect_flags(t: Type, out: list[int]) -> None:
    if isinstance(t, TVar):
        if t.flag is not None:
            out.append(t.flag)
    elif isinstance(t, TList):
        _collect_flags(t.elem, out)
    elif isinstance(t, TFun):
        _collect_flags(t.arg, out)
        _collect_flags(t.res, out)
    elif isinstance(t, TRec):
        for f in t.fields:
            if f.flag is not None:
                out.append(f.flag)
        if t.row is not None and t.row.flag is not None:
            out.append(t.row.flag)
        for f in t.fields:
            _collect_flags(f.type, out)


def is_monotype(t: Type) -> bool:
    """True if ``t`` contains no type or row variables and is closed."""
    if isinstance(t, TVar):
        return False
    if isinstance(t, TList):
        return is_monotype(t.elem)
    if isinstance(t, TFun):
        return is_monotype(t.arg) and is_monotype(t.res)
    if isinstance(t, TRec):
        if t.row is not None:
            return False
        return all(is_monotype(f.type) for f in t.fields)
    return True
