"""The polytype lattice of Sect. 4.2: instance order, gci (meet), lca (join).

* ``t1 ⊑P t2``  iff  ground(t1) ⊆ ground(t2)  iff  t1 matches t2 (t1 is a
  substitution instance of t2) — implemented by one-way matching;
* ``gci`` (greatest common instance) is unification after renaming apart;
* ``lca`` (least common anti-instance) is Plotkin anti-unification,
  extended to rows: records agreeing on some fields generalise to an open
  record with the common fields.

``canonical`` renumbers variables in first-occurrence order, giving a
decidable α-equivalence used by the (LETREC) fixpoint test
(⇓RP(tk) = ⇓RP(tk+1)).  ``enumerate_monotypes`` provides the bounded ground
universes used by the completeness tests (Sect. 3/4 lemmas).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Iterator, Optional

from .subst import Subst
from .terms import (
    BOOL,
    TCon,
    Field,
    INT,
    Row,
    TBool,
    TFun,
    TInt,
    TList,
    TRec,
    TVar,
    Type,
    VarSupply,
    is_monotype,
)
from .unify import UnifyError, mgu


# ---------------------------------------------------------------------------
# canonical renaming / alpha equivalence
# ---------------------------------------------------------------------------
def canonical(t: Type) -> Type:
    """Renumber type and row variables in first-occurrence order."""
    type_map: dict[int, int] = {}
    row_map: dict[int, int] = {}

    def go(t: Type) -> Type:
        if isinstance(t, TVar):
            new = type_map.setdefault(t.var, len(type_map))
            return TVar(new, t.flag)
        if isinstance(t, TList):
            return TList(go(t.elem))
        if isinstance(t, TFun):
            arg = go(t.arg)
            return TFun(arg, go(t.res))
        if isinstance(t, TRec):
            fields = tuple(Field(f.label, go(f.type), f.flag) for f in t.fields)
            row = t.row
            if row is not None:
                row = Row(row_map.setdefault(row.var, len(row_map)), row.flag)
            return TRec(fields, row)
        return t

    return go(t)


def alpha_equivalent(t1: Type, t2: Type) -> bool:
    """True if the terms are equal up to renaming of variables."""
    return canonical(t1) == canonical(t2)


# ---------------------------------------------------------------------------
# instance order (matching)
# ---------------------------------------------------------------------------
def match(pattern: Type, target: Type) -> Optional[Subst]:
    """One-way matching: a σ over the pattern's variables with σ(pattern) = target.

    Returns None if no such substitution exists.  The target's variables are
    treated as constants.
    """
    types: dict[int, Type] = {}
    rows: dict[int, tuple[tuple[Field, ...], Optional[Row]]] = {}

    def go(pattern: Type, target: Type) -> bool:
        if isinstance(pattern, TVar):
            bound = types.get(pattern.var)
            if bound is None:
                types[pattern.var] = target
                return True
            return bound == target
        if isinstance(pattern, TInt):
            return isinstance(target, TInt)
        if isinstance(pattern, TCon):
            return pattern == target
        if isinstance(pattern, TBool):
            return isinstance(target, TBool)
        if isinstance(pattern, TList):
            return isinstance(target, TList) and go(pattern.elem, target.elem)
        if isinstance(pattern, TFun):
            return (
                isinstance(target, TFun)
                and go(pattern.arg, target.arg)
                and go(pattern.res, target.res)
            )
        if isinstance(pattern, TRec):
            if not isinstance(target, TRec):
                return False
            target_fields = {f.label: f for f in target.fields}
            for f in pattern.fields:
                other = target_fields.pop(f.label, None)
                if other is None or not go(f.type, other.type):
                    return False
            extra = tuple(sorted(target_fields.values(), key=lambda f: f.label))
            if pattern.row is None:
                return not extra and target.row is None
            binding = (extra, target.row)
            bound_row = rows.get(pattern.row.var)
            if bound_row is None:
                rows[pattern.row.var] = binding
                return True
            return bound_row == binding
        raise TypeError(f"unknown type node {pattern!r}")

    if go(pattern, target):
        return Subst(types, rows)
    return None


def instance_of(t1: Type, t2: Type) -> bool:
    """``t1 ⊑P t2``: t1 is a substitution instance of t2."""
    return match(t2, t1) is not None


def gci(t1: Type, t2: Type, supply: VarSupply) -> Optional[Type]:
    """Greatest common instance: rename apart, unify; None if none exists.

    Both inputs are renamed into disjoint fresh variables first, matching
    the definition in Sect. 4.2.
    """
    renamed1 = _rename_apart(t1, supply)
    renamed2 = _rename_apart(t2, supply)
    try:
        subst = mgu(renamed1, renamed2, supply)
    except UnifyError:
        return None
    return subst.apply(renamed1)


def _rename_apart(t: Type, supply: VarSupply) -> Type:
    type_map: dict[int, int] = {}
    row_map: dict[int, int] = {}

    def go(t: Type) -> Type:
        if isinstance(t, TVar):
            if t.var not in type_map:
                type_map[t.var] = supply.fresh_type_var()
            return TVar(type_map[t.var], t.flag)
        if isinstance(t, TList):
            return TList(go(t.elem))
        if isinstance(t, TFun):
            return TFun(go(t.arg), go(t.res))
        if isinstance(t, TRec):
            fields = tuple(Field(f.label, go(f.type), f.flag) for f in t.fields)
            row = t.row
            if row is not None:
                if row.var not in row_map:
                    row_map[row.var] = supply.fresh_row_var()
                row = Row(row_map[row.var], row.flag)
            return TRec(fields, row)
        return t

    return go(t)


# ---------------------------------------------------------------------------
# anti-unification (lca)
# ---------------------------------------------------------------------------
class _AntiUnifier:
    """Plotkin least general generalisation with a pair table."""

    def __init__(self, supply: VarSupply) -> None:
        self.supply = supply
        self.pair_vars: dict[tuple[Type, Type], int] = {}
        self.row_pair_vars: dict[tuple[object, object], int] = {}

    def generalize(self, t1: Type, t2: Type) -> Type:
        if t1 == t2:
            return t1
        if isinstance(t1, TList) and isinstance(t2, TList):
            return TList(self.generalize(t1.elem, t2.elem))
        if isinstance(t1, TFun) and isinstance(t2, TFun):
            return TFun(
                self.generalize(t1.arg, t2.arg),
                self.generalize(t1.res, t2.res),
            )
        if isinstance(t1, TRec) and isinstance(t2, TRec):
            return self.generalize_records(t1, t2)
        key = (t1, t2)
        if key not in self.pair_vars:
            self.pair_vars[key] = self.supply.fresh_type_var()
        return TVar(self.pair_vars[key])

    def generalize_records(self, t1: TRec, t2: TRec) -> Type:
        labels1 = {f.label: f for f in t1.fields}
        labels2 = {f.label: f for f in t2.fields}
        common = sorted(set(labels1) & set(labels2))
        fields = tuple(
            Field(
                label,
                self.generalize(labels1[label].type, labels2[label].type),
            )
            for label in common
        )
        same_shape = (
            set(labels1) == set(labels2)
            and t1.row is None
            and t2.row is None
        )
        if same_shape:
            return TRec(fields, None)
        # The remainders (extra fields and tails) generalise to a row var,
        # shared between identical remainder pairs.
        rest1 = (
            tuple(f for f in t1.fields if f.label not in common),
            t1.row,
        )
        rest2 = (
            tuple(f for f in t2.fields if f.label not in common),
            t2.row,
        )
        key = (rest1, rest2)
        if key not in self.row_pair_vars:
            self.row_pair_vars[key] = self.supply.fresh_row_var()
        return TRec(fields, Row(self.row_pair_vars[key]))


def lca(t1: Type, t2: Type, supply: VarSupply) -> Type:
    """Least common anti-instance of two types."""
    return _AntiUnifier(supply).generalize(t1, t2)


def lca_many(types: Iterable[Type], supply: VarSupply) -> Optional[Type]:
    """lca of a set of types; None for the empty set (⊥)."""
    result: Optional[Type] = None
    anti = _AntiUnifier(supply)
    for t in types:
        result = t if result is None else anti.generalize(result, t)
    return result


# ---------------------------------------------------------------------------
# bounded ground universes (for the completeness tests)
# ---------------------------------------------------------------------------
def enumerate_monotypes(
    depth: int,
    labels: tuple[str, ...] = (),
    include_lists: bool = False,
    include_functions: bool = True,
) -> list[Type]:
    """All closed monotypes up to ``depth`` over the given field labels.

    depth 0: Int, Bool.  depth n: functions/lists/records of depth n-1
    components.  The universe grows very fast; keep depth ≤ 2 and at most
    two labels in tests.
    """
    current: list[Type] = [INT, BOOL]
    for _ in range(depth):
        next_level = list(current)
        if include_functions:
            for arg in current:
                for res in current:
                    next_level.append(TFun(arg, res))
        if include_lists:
            for elem in current:
                next_level.append(TList(elem))
        for count in range(len(labels) + 1):
            for subset in combinations(labels, count):
                for assignment in _assignments(subset, current):
                    next_level.append(TRec(assignment, None))
        seen: set[Type] = set()
        deduped = []
        for t in next_level:
            if t not in seen:
                seen.add(t)
                deduped.append(t)
        current = deduped
    return current


def _assignments(
    labels: tuple[str, ...], universe: list[Type]
) -> Iterator[tuple[Field, ...]]:
    if not labels:
        yield ()
        return
    head, *tail = labels
    for t in universe:
        for rest in _assignments(tuple(tail), universe):
            yield (Field(head, t),) + rest


def ground_instances(
    t: Type, universe: Iterable[Type]
) -> list[Type]:
    """The members of ``universe`` that are instances of ``t``.

    This is ground(t) intersected with a bounded universe; used to compare
    polytype results against monotype-semantics results in tests.
    """
    return [m for m in universe if is_monotype(m) and instance_of(m, t)]
