"""Projections between P and PR, and flag-sequence extraction (Def. 1).

* ``strip``    — ⇓RP(·): erase all flags from a term (PR → P),
* ``decorate`` — ⇑RP(·): give every flag position a fresh flag (P → PR),
* ``flag_literals`` — the [·] function of Definition 1: the sequence of all
  flags of a term as *literals*, where flags under a function-argument
  position appear negated (contra-variance, Ex. 2/3).

Two flagged terms with equal stripped structure always produce sequences of
equal length in matching positional order, which is what the sequence
(bi-)implications of the inference rules rely on.
"""

from __future__ import annotations

from ..boolfn.flags import FlagSupply
from .terms import Field, Row, TFun, TList, TRec, TVar, Type


def strip(t: Type) -> Type:
    """⇓RP(·): erase every flag of ``t``."""
    if isinstance(t, TVar):
        return t if t.flag is None else TVar(t.var)
    if isinstance(t, TList):
        return TList(strip(t.elem))
    if isinstance(t, TFun):
        return TFun(strip(t.arg), strip(t.res))
    if isinstance(t, TRec):
        fields = tuple(Field(f.label, strip(f.type)) for f in t.fields)
        row = t.row
        if row is not None and row.flag is not None:
            row = Row(row.var)
        return TRec(fields, row)
    return t


def strip_env(env: dict[str, Type]) -> dict[str, Type]:
    """⇓RP lifted to environments."""
    return {name: strip(t) for name, t in env.items()}


def decorate(t: Type, flags: FlagSupply) -> Type:
    """⇑RP(·): redecorate every flag position of ``t`` with a fresh flag."""
    if isinstance(t, TVar):
        return TVar(t.var, flags.fresh())
    if isinstance(t, TList):
        return TList(decorate(t.elem, flags))
    if isinstance(t, TFun):
        return TFun(decorate(t.arg, flags), decorate(t.res, flags))
    if isinstance(t, TRec):
        fields = tuple(
            Field(f.label, decorate(f.type, flags), flags.fresh())
            for f in t.fields
        )
        row = t.row
        if row is not None:
            row = Row(row.var, flags.fresh())
        return TRec(fields, row)
    return t


def redecorate(t: Type, flags: FlagSupply) -> Type:
    """⇑RP(⇓RP(·)): the fresh-flags copy used by the (VAR) rule."""
    return decorate(strip(t), flags)


def flag_literals(t: Type) -> tuple[int, ...]:
    """[t] per Definition 1: all flags of ``t`` as sign-carrying literals.

    The sign encodes variance: flags under an odd number of
    function-argument positions are negative.  Record sequences list the
    field flags (in sorted label order) followed by the row flag, then the
    field types' sequences in the same order.

    Raises ``ValueError`` if some flag position is undecorated — the
    inference invariant is that every live type is fully flagged.
    """
    out: list[int] = []
    _collect(t, out, positive=True)
    return tuple(out)


def _collect(t: Type, out: list[int], positive: bool) -> None:
    sign = 1 if positive else -1
    if isinstance(t, TVar):
        if t.flag is None:
            raise ValueError(f"undecorated type variable in {t!r}")
        out.append(sign * t.flag)
    elif isinstance(t, TList):
        _collect(t.elem, out, positive)
    elif isinstance(t, TFun):
        _collect(t.arg, out, not positive)
        _collect(t.res, out, positive)
    elif isinstance(t, TRec):
        for f in t.fields:
            if f.flag is None:
                raise ValueError(f"undecorated field {f.label!r} in {t!r}")
            out.append(sign * f.flag)
        if t.row is not None:
            if t.row.flag is None:
                raise ValueError(f"undecorated row in {t!r}")
            out.append(sign * t.row.flag)
        for f in t.fields:
            _collect(f.type, out, positive)


def env_flag_literals(env: dict[str, Type]) -> tuple[int, ...]:
    """[ρ]_X: the concatenated flag sequences of an environment.

    Entries are visited in sorted-name order so that two environments with
    the same domain and equal stripped entries align positionally.
    """
    out: list[int] = []
    for name in sorted(env):
        _collect(env[name], out, positive=True)
    return tuple(out)


def occurrence_flags(t: Type, type_var: int | None = None,
                     row_var: int | None = None) -> list[int]:
    """Flags of each occurrence of a type or row variable, left to right.

    Exactly one of ``type_var``/``row_var`` must be given.  This is the
    ``flags(a, ρ)`` function of Fig. 4 for a single term; ``applyS`` calls
    it on every live term.
    """
    if (type_var is None) == (row_var is None):
        raise ValueError("specify exactly one of type_var / row_var")
    out: list[int] = []
    _occurrences(t, type_var, row_var, out)
    return out


def _occurrences(
    t: Type, type_var: int | None, row_var: int | None, out: list[int]
) -> None:
    if isinstance(t, TVar):
        if type_var is not None and t.var == type_var:
            if t.flag is None:
                raise ValueError(f"undecorated occurrence of variable in {t!r}")
            out.append(t.flag)
    elif isinstance(t, TList):
        _occurrences(t.elem, type_var, row_var, out)
    elif isinstance(t, TFun):
        _occurrences(t.arg, type_var, row_var, out)
        _occurrences(t.res, type_var, row_var, out)
    elif isinstance(t, TRec):
        if (
            row_var is not None
            and t.row is not None
            and t.row.var == row_var
        ):
            if t.row.flag is None:
                raise ValueError(f"undecorated row occurrence in {t!r}")
            out.append(t.row.flag)
        for f in t.fields:
            _occurrences(f.type, type_var, row_var, out)
