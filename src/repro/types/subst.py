"""Idempotent substitutions on plain (unflagged) type terms.

A substitution σ maps type variables to polytypes and row variables to row
extensions ``(extra fields, new tail)``.  Substitutions produced by
:mod:`repro.types.unify` are fully resolved (idempotent): applying one twice
equals applying it once.

Substitutions deliberately operate on *stripped* terms only (σ ∈ V → P,
Sect. 2.4); lifting a substitution to flagged terms — which requires
duplicating flow information — is the job of ``applyS``
(:mod:`repro.infer.applys`).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Optional

from .terms import Field, Row, TFun, TList, TRec, TVar, Type

RowBinding = tuple[tuple[Field, ...], Optional[Row]]


@dataclass(frozen=True)
class Subst:
    """An idempotent substitution; empty maps denote the identity."""

    types: dict[int, Type] = dataclass_field(default_factory=dict)
    rows: dict[int, RowBinding] = dataclass_field(default_factory=dict)

    def is_identity(self) -> bool:
        """True if the substitution maps nothing."""
        return not self.types and not self.rows

    def domain_type_vars(self) -> set[int]:
        """Type variables the substitution replaces."""
        return set(self.types)

    def domain_row_vars(self) -> set[int]:
        """Row variables the substitution replaces."""
        return set(self.rows)

    def apply(self, t: Type) -> Type:
        """Apply to a stripped type term.

        Raises ``ValueError`` if ``t`` carries flags: flagged terms must go
        through ``applyS`` so that flow information is duplicated.
        """
        if isinstance(t, TVar):
            if t.flag is not None:
                raise ValueError("Subst.apply on a flagged term; use applyS")
            return self.types.get(t.var, t)
        if isinstance(t, TList):
            return TList(self.apply(t.elem))
        if isinstance(t, TFun):
            return TFun(self.apply(t.arg), self.apply(t.res))
        if isinstance(t, TRec):
            fields = []
            for f in t.fields:
                if f.flag is not None:
                    raise ValueError("Subst.apply on a flagged term; use applyS")
                fields.append(Field(f.label, self.apply(f.type)))
            row = t.row
            if row is not None:
                if row.flag is not None:
                    raise ValueError("Subst.apply on a flagged term; use applyS")
                binding = self.rows.get(row.var)
                if binding is not None:
                    extra, tail = binding
                    # A bound row var can also occur inside one of the
                    # record's field types, making the binding's fields
                    # overlap the literal ones.  Unification equated the
                    # overlapping copies, so keep the literal field.
                    present = {f.label for f in fields}
                    fields.extend(
                        f for f in extra if f.label not in present
                    )
                    row = tail
            return TRec(tuple(fields), row)
        return t

    def apply_env(self, env: dict[str, Type]) -> dict[str, Type]:
        """Apply pointwise to a type environment."""
        return {name: self.apply(t) for name, t in env.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from .terms import row_name, var_name

        parts = [f"{var_name(v)}/{t!r}" for v, t in sorted(self.types.items())]
        for v, (fields, tail) in sorted(self.rows.items()):
            inner = ", ".join(repr(f) for f in fields)
            if tail is not None:
                inner = f"{inner}, {tail!r}" if inner else repr(tail)
            parts.append(f"{row_name(v)}/{{{inner}}}")
        return "[" + ", ".join(parts) + "]"


IDENTITY = Subst()
