"""The crash-safe, disk-backed, content-addressed result store.

One directory, shared by any number of processes — offline ``rowpoly
check --store`` runs, a daemon, every shard of ``serve --shards N``, and
a whole CI fleet — with three invariants:

**Torn or flipped entries read as misses, never as wrong answers.**
Every entry is a one-file JSON envelope carrying the sha-256 of its own
canonically encoded payload::

    {"format": 1, "key": "<hex>", "sha256": "<hex>", "payload": {...}}

A reader re-hashes the payload and checks ``format``, ``key`` and
``sha256`` before believing a byte of it.  Anything that fails — a
truncated write the machine died during, a flipped bit, garbage, a
future format — is **quarantined** (atomically renamed into
``quarantine/``, preserved for forensics) and reported as a miss.

**Writes are atomic and idempotent.**  ``put`` writes to a unique temp
file in ``tmp/`` (same filesystem), fsyncs, then ``os.replace``\\ s into
place.  Readers therefore only ever see a complete old entry or a
complete new one.  Concurrent writers of the same key race benignly:
keys are content-addressed, so both writers carry byte-identical
payloads and either winner leaves one valid entry.

**Maintenance never blocks serving.**  ``gc``/``clear`` take an advisory
``flock`` on ``gc.lock`` so two collectors do not fight, but readers and
writers never lock anything — a reader that loses a race with the
collector sees a plain miss.

Everything degrades: any ``OSError`` in ``get``/``put`` (including ones
injected by the chaos harness's ``io`` fault kind at the
``store.get``/``store.put`` sites) is swallowed into a miss/no-op, so a
full disk or a yanked network mount costs performance, not answers.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
import threading
from typing import Callable, Iterator, Optional

from ..testing.faults import fault_point
from .keys import STORE_FORMAT

_OBJECTS = "objects"
_QUARANTINE = "quarantine"
_TMP = "tmp"
_GC_LOCK = "gc.lock"
_SUFFIX = ".json"


def _canonical(payload: dict) -> bytes:
    """The canonical payload encoding the self-verifying hash covers."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode()


def payload_digest(payload: dict) -> str:
    return hashlib.sha256(_canonical(payload)).hexdigest()


class DiskStore:
    """A :class:`~repro.store.backend.CacheBackend` over one directory."""

    def __init__(
        self,
        root: str,
        metrics_hook: Optional[Callable[[str, int], None]] = None,
    ) -> None:
        self.root = os.path.abspath(root)
        self._hook = metrics_hook
        self._lock = threading.Lock()
        self._counters = {
            "hits": 0, "misses": 0, "puts": 0,
            "corrupt_entries": 0, "evictions": 0, "io_errors": 0,
        }
        for sub in (_OBJECTS, _QUARANTINE, _TMP):
            os.makedirs(os.path.join(self.root, sub), exist_ok=True)

    # -- bookkeeping ----------------------------------------------------
    def _record(self, event: str, count: int = 1) -> None:
        with self._lock:
            self._counters[event] = self._counters.get(event, 0) + count
        # Hierarchy-level hits/misses are the TieredCache's to report;
        # the disk layer surfaces only events no other layer can see.
        if self._hook is not None and event in (
            "corrupt_entries", "evictions"
        ):
            self._hook(event, count)

    def _path(self, key: str) -> str:
        # Two-level fan-out keeps directory listings (and gc scans)
        # proportional, the git-objects layout.
        return os.path.join(self.root, _OBJECTS, key[:2], key + _SUFFIX)

    # -- the CacheBackend protocol --------------------------------------
    def get(self, key: str) -> Optional[dict]:
        path = self._path(key)
        try:
            fault_point("store.get")
            with open(path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            self._record("misses")
            return None
        except OSError:
            self._record("io_errors")
            self._record("misses")
            return None
        payload = self._validate(key, raw)
        if payload is None:
            self._quarantine(path)
            self._record("corrupt_entries")
            self._record("misses")
            return None
        self._record("hits")
        return payload

    def put(self, key: str, payload: dict) -> None:
        envelope = {
            "format": STORE_FORMAT,
            "key": key,
            "sha256": payload_digest(payload),
            "payload": payload,
        }
        data = json.dumps(
            envelope, sort_keys=True, separators=(",", ":")
        ).encode() + b"\n"
        path = self._path(key)
        tmp_dir = os.path.join(self.root, _TMP)
        try:
            fault_point("store.put")
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=tmp_dir, prefix=key[:8] + "-", suffix=_SUFFIX
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_path, path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp_path)
                raise
        except OSError:
            self._record("io_errors")
            return
        self._record("puts")

    # -- validation & quarantine ---------------------------------------
    def _validate(self, key: str, raw: bytes) -> Optional[dict]:
        """The payload iff the envelope is whole and self-consistent."""
        try:
            envelope = json.loads(raw)
        except (ValueError, UnicodeDecodeError):
            return None
        if not isinstance(envelope, dict):
            return None
        payload = envelope.get("payload")
        if (
            envelope.get("format") != STORE_FORMAT
            or envelope.get("key") != key
            or not isinstance(payload, dict)
            or envelope.get("sha256") != payload_digest(payload)
        ):
            return None
        return payload

    def _quarantine(self, path: str) -> None:
        """Move a bad entry aside (atomic; best-effort under races)."""
        target = os.path.join(
            self.root, _QUARANTINE, os.path.basename(path)
        )
        with contextlib.suppress(OSError):
            os.replace(path, target)

    # -- maintenance (the `rowpoly cache` surface) ----------------------
    def _entries(self) -> Iterator[tuple[str, os.stat_result]]:
        objects = os.path.join(self.root, _OBJECTS)
        for shard in sorted(self._listdir(objects)):
            shard_dir = os.path.join(objects, shard)
            for name in sorted(self._listdir(shard_dir)):
                if not name.endswith(_SUFFIX):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    yield path, os.stat(path)
                except OSError:
                    continue  # lost a race with gc/clear

    @staticmethod
    def _listdir(path: str) -> list[str]:
        try:
            return os.listdir(path)
        except OSError:
            return []

    @contextlib.contextmanager
    def _gc_lock(self) -> Iterator[None]:
        """Advisory exclusive lock serialising collectors, not readers."""
        lock_path = os.path.join(self.root, _GC_LOCK)
        handle = open(lock_path, "a+")
        try:
            try:
                import fcntl

                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            except ImportError:  # pragma: no cover - non-POSIX fallback
                pass
            yield
        finally:
            handle.close()  # closing drops the flock

    def stats(self) -> dict[str, object]:
        entries = 0
        total_bytes = 0
        for _, stat in self._entries():
            entries += 1
            total_bytes += stat.st_size
        quarantined = sum(
            1
            for name in self._listdir(
                os.path.join(self.root, _QUARANTINE)
            )
            if name.endswith(_SUFFIX)
        )
        with self._lock:
            counters = dict(self._counters)
        return {
            "layer": "disk",
            "root": self.root,
            "format": STORE_FORMAT,
            "entries": entries,
            "bytes": total_bytes,
            "quarantined": quarantined,
            **counters,
        }

    def verify(self) -> dict[str, int]:
        """Re-validate every entry; quarantine the bad ones."""
        checked = corrupt = 0
        for path, _ in list(self._entries()):
            checked += 1
            key = os.path.basename(path)[: -len(_SUFFIX)]
            try:
                with open(path, "rb") as handle:
                    raw = handle.read()
            except OSError:
                continue
            if self._validate(key, raw) is None:
                self._quarantine(path)
                self._record("corrupt_entries")
                corrupt += 1
        return {"checked": checked, "corrupt": corrupt}

    def gc(self, max_bytes: int) -> dict[str, int]:
        """Evict least-recently-written entries down to ``max_bytes``."""
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        removed = removed_bytes = kept_bytes = 0
        with self._gc_lock():
            entries = sorted(
                self._entries(), key=lambda item: item[1].st_mtime
            )
            total = sum(stat.st_size for _, stat in entries)
            kept_bytes = total
            for path, stat in entries:
                if kept_bytes <= max_bytes:
                    break
                with contextlib.suppress(OSError):
                    os.unlink(path)
                    removed += 1
                    removed_bytes += stat.st_size
                kept_bytes -= stat.st_size
        if removed:
            self._record("evictions", removed)
        return {
            "removed": removed,
            "removed_bytes": removed_bytes,
            "kept_bytes": max(kept_bytes, 0),
        }

    def clear(self) -> dict[str, int]:
        """Drop every entry (and the quarantine)."""
        removed = 0
        with self._gc_lock():
            for path, _ in list(self._entries()):
                with contextlib.suppress(OSError):
                    os.unlink(path)
                    removed += 1
            quarantine = os.path.join(self.root, _QUARANTINE)
            for name in self._listdir(quarantine):
                with contextlib.suppress(OSError):
                    os.unlink(os.path.join(quarantine, name))
        if removed:
            self._record("evictions", removed)
        return {"removed": removed}
