"""The unified cache hierarchy and persistent result store.

``repro.store`` is the one home for every cache the checker has:
key derivation (:mod:`repro.store.keys`), the :class:`CacheBackend`
protocol with its in-memory and tiered layers
(:mod:`repro.store.backend`), and the crash-safe disk layer
(:mod:`repro.store.disk`).  ``open_store(dir)`` is the everything
entry point the CLI, the daemon, and every shard use.
"""

from .backend import (
    CacheBackend,
    MemoryCache,
    MetricsHook,
    TieredCache,
    open_store,
)
from .disk import DiskStore, payload_digest
from .keys import (
    SCHEMA_VERSION,
    STORE_FORMAT,
    config_digest,
    decl_key,
    module_key,
    options_key,
)

__all__ = [
    "CacheBackend",
    "DiskStore",
    "MemoryCache",
    "MetricsHook",
    "SCHEMA_VERSION",
    "STORE_FORMAT",
    "TieredCache",
    "config_digest",
    "decl_key",
    "module_key",
    "open_store",
    "options_key",
    "payload_digest",
]
