"""The :class:`CacheBackend` protocol and the in-memory / tiered layers.

Before this module existed the repo had three ad-hoc caches — the
per-declaration dict inside :class:`~repro.infer.session.InferSession`,
the fingerprint-replay outcome on each
:class:`~repro.server.registry.SessionEntry`, and nothing on disk.  They
now form one explicit hierarchy behind a single protocol:

==========  ==========================================================
layer       contents
==========  ==========================================================
L0          live objects, process-private: the session's per-decl
            dict (reports **plus** engine exports) and the registry's
            replay outcomes — not a :class:`CacheBackend`; these hold
            unpicklable state and invalidate by name/fingerprint
L1          :class:`MemoryCache` — content-addressed JSON payloads,
            LRU-bounded, shared by every session in one process
L2          :class:`~repro.store.disk.DiskStore` — the persistent
            content-addressed store, shared by every *process* (and
            every daemon restart) pointing at one directory
==========  ==========================================================

:class:`TieredCache` composes L1 over L2: gets fall through and promote
hits upward, puts write through.  Everything below L0 speaks plain
JSON-ready dicts, so a payload read from any layer is byte-equivalent to
one computed fresh — the property every parity test in this repo leans
on.

All backends **degrade, never fail**: a broken layer (I/O error, corrupt
entry) reads as a miss and writes as a no-op.  Callers must treat
``get() is None`` as "solve it yourself", which keeps a damaged store
strictly a performance problem.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Optional, Protocol, Sequence, runtime_checkable

#: Metrics callback: ``hook(event, count)`` with ``event`` one of
#: ``hits``/``misses``/``evictions``/``corrupt_entries``.
MetricsHook = Callable[[str, int], None]


@runtime_checkable
class CacheBackend(Protocol):
    """What every payload-cache layer offers.

    ``get`` returns the stored JSON-ready payload dict or ``None`` (a
    miss — including every degraded failure mode); ``put`` stores a
    payload best-effort; ``stats`` reports layer-local counters for
    observability (never used for correctness).
    """

    def get(self, key: str) -> Optional[dict]:
        ...

    def put(self, key: str, payload: dict) -> None:
        ...

    def stats(self) -> dict[str, object]:
        ...


class MemoryCache:
    """A thread-safe, LRU-bounded, content-addressed payload cache.

    The process-local L1: one instance in front of a
    :class:`~repro.store.disk.DiskStore` saves every session in a daemon
    the disk read for entries some *other* session already pulled (the
    shared-corpus case: many modules importing the same prelude
    declarations hit here, not the disk).
    """

    def __init__(
        self,
        capacity: int = 4096,
        metrics_hook: Optional[MetricsHook] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("memory cache capacity must be >= 1")
        self.capacity = capacity
        self._hook = metrics_hook
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> Optional[dict]:
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return payload

    def put(self, key: str, payload: dict) -> None:
        evicted = 0
        with self._lock:
            self._entries[key] = payload
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
            self._evictions += evicted
        if evicted and self._hook is not None:
            self._hook("evictions", evicted)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, object]:
        with self._lock:
            return {
                "layer": "memory",
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }


class TieredCache:
    """Layered :class:`CacheBackend`\\ s: first hit wins, hits promote.

    ``get`` consults layers in order and copies a lower layer's hit into
    every layer above it; ``put`` writes through to all layers.  The
    metrics hook observes the *hierarchy-level* outcome — one logical
    lookup is one hit or one miss, regardless of which layer answered —
    which is what the daemon's ``store_hits``/``store_misses`` counters
    mean.
    """

    def __init__(
        self,
        layers: Sequence[CacheBackend],
        metrics_hook: Optional[MetricsHook] = None,
    ) -> None:
        if not layers:
            raise ValueError("tiered cache needs at least one layer")
        self.layers = list(layers)
        self._hook = metrics_hook

    def _record(self, event: str, count: int = 1) -> None:
        if self._hook is not None:
            self._hook(event, count)

    def get(self, key: str) -> Optional[dict]:
        for index, layer in enumerate(self.layers):
            payload = layer.get(key)
            if payload is not None:
                for upper in self.layers[:index]:
                    upper.put(key, payload)
                self._record("hits")
                return payload
        self._record("misses")
        return None

    def put(self, key: str, payload: dict) -> None:
        for layer in self.layers:
            layer.put(key, payload)

    def stats(self) -> dict[str, object]:
        return {
            "layer": "tiered",
            "layers": [layer.stats() for layer in self.layers],
        }


def open_store(
    root: str,
    metrics_hook: Optional[MetricsHook] = None,
    memory_entries: int = 4096,
):
    """The standard hierarchy over a store directory: memory → disk.

    What ``--store DIR`` opens everywhere (CLI checks, the daemon, every
    shard of a sharded fleet): a :class:`TieredCache` of one process-
    local :class:`MemoryCache` over one shared
    :class:`~repro.store.disk.DiskStore`.  ``memory_entries=0`` skips
    the memory layer (tests and the ``rowpoly cache`` admin paths want
    to observe the disk directly).
    """
    from .disk import DiskStore

    disk = DiskStore(root, metrics_hook=metrics_hook)
    if memory_entries <= 0:
        return disk
    return TieredCache(
        [MemoryCache(memory_entries), disk], metrics_hook=metrics_hook
    )
