"""Cache-key derivation for the persistent result store.

Every layer of the cache hierarchy — the session's in-memory
per-declaration dict, the optional shared :class:`~repro.store.backend.
MemoryCache`, and the disk-backed :class:`~repro.store.disk.DiskStore` —
addresses entries by **content**, never by path or mtime.  A key is the
sha-256 of everything that could change the stored bytes:

* the *kind* of entry (``decl`` for one declaration's report, ``module``
  for one whole module's stable report),
* the content fingerprint(s): a declaration's sha-256 fingerprint plus
  the canonical *signatures* of its dependencies (the same early-cutoff
  inputs the session's memory cache uses), or a module source's sha-256
  fingerprint,
* the **configuration digest** — engine name, the session-relevant
  :class:`~repro.infer.state.FlowOptions` fields, the stable report
  schema version and the on-disk entry format version.

Two deliberate exclusions, both load-bearing:

* **budgets** are *not* part of the key.  Inference is deterministic, so
  a budgeted run that completes produces byte-identical reports to an
  unbudgeted one; runs that do *not* complete produce ``aborted``
  (RP0998) reports, which are never persisted.  Keying on the budget
  would only fragment the cache across equivalent entries;
* **paths** are not part of the key.  The stable report's ``file`` field
  is attached by the caller; the cached payload is derived from content
  alone, so the same declaration in two files shares one entry.

Bumping :data:`SCHEMA_VERSION` (the stable-report shape) or
:data:`STORE_FORMAT` (the envelope layout) orphans old entries rather
than misreading them — a version skew reads as a miss, never as a wrong
answer.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Optional

#: Version of the stable check-report JSON shape the payloads carry
#: (schema v2 introduced the ``aborted`` status and RP0998/RP0997 —
#: see ``docs/schema/check-report.schema.json``).
SCHEMA_VERSION = 2

#: Version of the on-disk entry envelope written by
#: :class:`repro.store.disk.DiskStore`.
STORE_FORMAT = 1

_SEP = "\x00"


def options_key(options) -> tuple:
    """The session-relevant option fields (the batch checker's knobs).

    Accepts a :class:`~repro.infer.state.FlowOptions` or ``None``
    (defaults).  Duck-typed on purpose: this module sits below both the
    inference and serving layers and must not import either.
    """
    if options is None:
        return (True, True)
    return (bool(options.track_fields), bool(options.gc))


def config_digest(engine: str, options=None) -> str:
    """Digest of everything configuration-shaped that affects reports."""
    payload = _SEP.join(
        (
            "config",
            str(SCHEMA_VERSION),
            str(STORE_FORMAT),
            engine,
            repr(options_key(options)),
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def decl_key(
    fingerprint: str,
    dep_parts: Iterable[str],
    digest: str,
) -> str:
    """The store key of one declaration's report.

    ``dep_parts`` is the session's cache-key contribution per dependency
    — ``name=<canonical signature>`` for checked dependencies — so an
    edit that preserves a dependency's signature keeps the key (the same
    early cutoff the in-memory layer has always had).
    """
    payload = _SEP.join(("decl", digest, fingerprint, *dep_parts))
    return hashlib.sha256(payload.encode()).hexdigest()


def module_key(source_fingerprint: str, digest: str) -> str:
    """The store key of one whole module source's stable report."""
    payload = _SEP.join(("module", digest, source_fingerprint))
    return hashlib.sha256(payload.encode()).hexdigest()
