"""Seeded dynamic-record corpora and the flow/setrows shared fragment.

Two generators, both deterministic per seed and *prefix-stable* (module
``i`` derives its rng from ``(seed, i)``, like :mod:`.corpus`):

:func:`fragment_source`
    Modules inside the fragment the flow and setrows engines share:
    record builds by update chains, guaranteed-present selects, lambda
    getters, lets, and ``if`` joins of *same-shape* records.  No
    ``when``, no concatenation and no heterogeneous joins — exactly the
    sublanguage where the two engines must agree on verdict and (after
    :func:`repro.infer.setrows.normalize_signature`) on signature.  A
    configurable fraction of modules carries a select of a provably
    absent field, so verdict parity is exercised on rejections too.

:func:`generate_dynrec_corpus`
    Modules *outside* the flag calculus: ``if`` joins whose branches
    give one field an ``Int`` in one arm and a ``Bool`` in the other,
    and heterogeneous list literals.  The flag engines reject these
    with a unification clash (``RP0002``); setrows types them with a
    union (``(Bool | Int)``).  This is the corpus behind
    ``rowpoly generate --corpus-dir D --dynamic-records`` and the
    setrows CI smoke job.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from .corpus import CorpusModule, GeneratedCorpus


# ---------------------------------------------------------------------------
# the flow/setrows shared fragment
# ---------------------------------------------------------------------------
#: Field-name pool for fragment records (small, so shapes recur and the
#: session layer's signature cache gets hits across modules).
_FRAGMENT_LABELS = ("x", "y", "z", "w", "u")


def _build_record(rng: Random, labels: tuple[str, ...]) -> str:
    """An update chain over ``{}`` setting every label to an Int."""
    text = "({})"
    for label in labels:
        text = f"@{{{label} = {rng.randrange(100)}}} ({text})"
    return text


def fragment_source(seed: int, index: int, *,
                    reject_rate: float = 0.25) -> str:
    """Module ``index`` of the shared-fragment corpus for ``seed``."""
    rng = Random(f"fragment:{seed}:{index}")
    count = rng.randrange(2, len(_FRAGMENT_LABELS) + 1)
    labels = tuple(sorted(rng.sample(_FRAGMENT_LABELS, count)))
    present = rng.choice(labels)
    other = rng.choice(labels)
    lines = [
        f"base = {_build_record(rng, labels)}",
        f"get = \\r -> plus (#{present} r) (#{other} r)",
        "sum = get base",
    ]
    # an if join of two same-shape records: both arms set the same
    # labels to Ints, so neither engine needs a union
    lines.append(
        f"pick = if some_condition then {_build_record(rng, labels)} "
        f"else {_build_record(rng, labels)}"
    )
    lines.append(f"picked = #{present} pick")
    if rng.random() < reject_rate:
        # a select of a field no update ever set: RP0001 on both
        # engines, plus the dependent-decl shadow
        lines.append(f"bug{index} = #absent{index} base")
        lines.append(f"after{index} = plus bug{index} 1")
    else:
        lines.append(f"after{index} = plus sum picked")
    return ";\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# dynamic-record corpus (setrows-only programs)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DynRecConfig:
    """Shape parameters of a dynamic-record corpus."""

    modules: int
    seed: int = 0
    #: Heterogeneous join declarations per module.
    joins_per_module: int = 2


def _dynrec_lines(rng: Random, index: int, joins: int) -> list[str]:
    lines: list[str] = []
    last = None
    for step in range(joins):
        value = rng.randrange(100)
        flag = rng.choice(("true", "false"))
        name = f"m{index}_mix{step}"
        # one field, Int in one arm and Bool in the other: only a
        # union-typed engine can give `#v` a type
        lines.append(
            f"{name} = if some_condition "
            f"then @{{v = {value}}} ({{}}) "
            f"else @{{v = {flag}}} ({{}})"
        )
        lines.append(f"{name}_get = #v {name}")
        last = f"{name}_get"
    values = ", ".join(
        rng.choice((str(rng.randrange(100)), "true", "false"))
        for _ in range(3)
    )
    lines.append(f"m{index}_list = [{values}, true, {rng.randrange(9)}]")
    lines.append(f"m{index}_head = head m{index}_list")
    if last is not None:
        lines.append(f"m{index}_both = [{last}, m{index}_head]")
    return lines


def generate_dynrec_corpus(config: DynRecConfig) -> GeneratedCorpus:
    """Generate a deterministic corpus of dynamic-record modules."""
    if config.modules < 1:
        raise ValueError("modules must be >= 1")
    modules: list[CorpusModule] = []
    for index in range(config.modules):
        rng = Random(f"dynrec:{config.seed}:{index}")
        lines = _dynrec_lines(rng, index, config.joins_per_module)
        modules.append(
            CorpusModule(
                name=f"dyn_{index:05d}.rp",
                source=";\n".join(lines) + "\n",
            )
        )
    return GeneratedCorpus(modules=tuple(modules), config=config)
