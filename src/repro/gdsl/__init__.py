"""Synthetic GDSL-style decoder workloads (the Fig. 9 corpora) and
seeded multi-module corpora for the audit pipeline."""

from .corpora import FIG9_CORPORA, CorpusSpec, build_corpus
from .corpus import (
    INJECTED_CODES,
    CorpusConfig,
    CorpusModule,
    GeneratedCorpus,
    generate_corpus,
    write_corpus,
)
from .dynrec import (
    DynRecConfig,
    fragment_source,
    generate_dynrec_corpus,
)
from .generator import GeneratedProgram, GeneratorConfig, generate_decoder

__all__ = [
    "CorpusConfig",
    "CorpusModule",
    "CorpusSpec",
    "DynRecConfig",
    "FIG9_CORPORA",
    "GeneratedCorpus",
    "GeneratedProgram",
    "GeneratorConfig",
    "INJECTED_CODES",
    "build_corpus",
    "fragment_source",
    "generate_corpus",
    "generate_decoder",
    "generate_dynrec_corpus",
    "write_corpus",
]
