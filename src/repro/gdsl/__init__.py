"""Synthetic GDSL-style decoder workloads (the Fig. 9 corpora)."""

from .corpora import FIG9_CORPORA, CorpusSpec, build_corpus
from .generator import GeneratedProgram, GeneratorConfig, generate_decoder

__all__ = [
    "CorpusSpec",
    "FIG9_CORPORA",
    "GeneratedProgram",
    "GeneratorConfig",
    "build_corpus",
    "generate_decoder",
]
