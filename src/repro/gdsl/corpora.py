"""The four decoder corpora of Fig. 9.

| decoder          | lines (paper) | paper w/o fields | paper w/ fields |
|------------------|---------------|------------------|-----------------|
| Atmel AVR        | 1468          | 0.18 s           | 0.32 s          |
| Atmel AVR + Sem  | 5166          | 1.55 s           | 3.01 s          |
| Intel x86        | 9315          | 6.11 s           | 15.65 s         |
| Intel x86 + Sem  | 18124         | 15.42 s          | 27.38 s         |

The synthetic corpora reproduce the *line counts* and the workload shape
(state-monad record usage); the absolute times of this pure-Python
implementation differ from the MLton-compiled SML original, so the
benchmark compares the *ratios* (w/ fields vs w/o fields, and the growth
across sizes) — see EXPERIMENTS.md.

``scale`` shrinks every corpus proportionally for quick runs (the default
benchmark uses a reduced scale; ``python -m repro bench fig9 --scale 1.0``
runs the full-size corpora).
"""

from __future__ import annotations

from dataclasses import dataclass

from .generator import GeneratedProgram, GeneratorConfig, generate_decoder


@dataclass(frozen=True)
class CorpusSpec:
    """One row of Fig. 9."""

    name: str
    lines: int
    with_semantics: bool
    paper_seconds_without_fields: float
    paper_seconds_with_fields: float


FIG9_CORPORA: tuple[CorpusSpec, ...] = (
    CorpusSpec("Atmel AVR", 1468, False, 0.18, 0.32),
    CorpusSpec("Atmel AVR + Sem", 5166, True, 1.55, 3.01),
    CorpusSpec("Intel x86", 9315, False, 6.11, 15.65),
    CorpusSpec("Intel x86 + Sem", 18124, True, 15.42, 27.38),
)


def build_corpus(spec: CorpusSpec, scale: float = 1.0,
                 seed: int = 0) -> GeneratedProgram:
    """Generate the synthetic program for one Fig. 9 row."""
    target = max(60, int(spec.lines * scale))
    config = GeneratorConfig(
        target_lines=target,
        with_semantics=spec.with_semantics,
        seed=seed,
    )
    program = generate_decoder(config)
    return GeneratedProgram(
        name=spec.name,
        source=program.source,
        lines=program.lines,
        decoders=program.decoders,
        semantic_functions=program.semantic_functions,
    )
