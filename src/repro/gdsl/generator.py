"""Synthetic GDSL-style decoder specifications (the Fig. 9 workload).

The paper evaluates its inference on decoder specifications from the GDSL
toolkit [25]: Atmel AVR and Intel x86 instruction decoders, optionally with
semantic translation functions.  Those sources are SML programs built
around a state monad whose state is a *flexible record* — decoders set
fields (operands, opcodes, mode bits), semantic translators read them, and
sub-decoders run conditionally ("Flexible records are used inside a
built-in state monad", Sect. 6).

We cannot ship the original SML sources, so this module generates programs
with the same inference workload profile in the reproduction's object
language:

* a prelude initialising a set of *base* fields on an empty record,
* many small decoder functions ``\\s -> ...`` that update fresh fields and
  read fields guaranteed present (base fields or fields they set
  themselves),
* for the "+ Sem" variants, semantic-translation functions that read many
  fields and thread the state through helper combinators,
* a dispatcher of nested conditionals joining decoder results — the
  (COND) environment meets that dominate inference time,
* a final driver applying the pipeline to the initial state.

Programs are generated as *source text* so the line counts of Fig. 9 are
meaningful; generation is deterministic per seed.  All generated programs
are well-typed under the flow inference (every select is justified), so
benchmark timings measure successful inference like the paper's.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class GeneratorConfig:
    """Shape parameters of a synthetic decoder specification."""

    target_lines: int
    with_semantics: bool = False
    # Guard some semantic reads with `when` (presence tests): exercises the
    # Fig. 8 rule at scale, pushing the flow formula out of 2-SAT.
    with_when: bool = False
    base_fields: int = 6
    fields_per_decoder: int = 3
    reads_per_semantic_fn: int = 4
    dispatch_fanout: int = 8
    seed: int = 0


@dataclass(frozen=True)
class GeneratedProgram:
    """A generated specification plus its metadata."""

    name: str
    source: str
    lines: int
    decoders: int
    semantic_functions: int


_FIELD_STEMS = (
    "opcode", "mode", "reg", "imm", "addr", "flag", "opnd", "size",
    "prefix", "scale", "index", "base", "disp", "segment", "rep", "lock",
)


def _field_name(index: int) -> str:
    stem = _FIELD_STEMS[index % len(_FIELD_STEMS)]
    return f"{stem}{index // len(_FIELD_STEMS)}"


def generate_decoder(config: GeneratorConfig) -> GeneratedProgram:
    """Generate one decoder specification of roughly ``target_lines``."""
    rng = random.Random(config.seed)
    base_fields = [_field_name(i) for i in range(config.base_fields)]
    lines: list[str] = []
    bindings: list[str] = []

    def emit_binding(name: str, body_lines: list[str]) -> None:
        bindings.append(name)
        lines.append(f"    {name} =")
        lines.extend(f"      {line}" for line in body_lines)
        lines.append("    ;")

    # -- prelude: initial state with the base fields ---------------------
    lines.append("-- synthetic decoder specification (GDSL-style workload)")
    lines.append("let")
    init_body = ["{}"]
    for index, field in enumerate(base_fields):
        init_body.insert(0, f"@{{{field} = {index}}} (")
        init_body.append(")")
    emit_binding("init_state", ["".join(init_body)])

    # helper combinators (sequencing in the state monad)
    emit_binding("seq2", ["\\f -> \\g -> \\s -> g (f s)"])
    emit_binding("const_fn", ["\\v -> \\s -> v"])

    decoders: list[str] = []
    semantic_functions: list[str] = []
    next_field = config.base_fields
    decoder_index = 0
    semantic_index = 0

    def decoder_lines(own_fields: list[str]) -> list[str]:
        body = ["\\s ->"]
        state = "s"
        step = 0
        for field in own_fields:
            reader = rng.choice(base_fields)
            if rng.random() < 0.5:
                value = f"plus (#{reader} {state}) {rng.randint(1, 99)}"
            else:
                value = str(rng.randint(0, 255))
            body.append(f"  let s{step} = @{{{field} = {value}}} {state} in")
            state = f"s{step}"
            step += 1
        # A conditional tail: either keep the extended state or re-read a
        # base field into one of the fields just set (both branches type).
        field = own_fields[-1]
        reader = rng.choice(base_fields)
        body.append(f"  if some_condition then {state}")
        body.append(f"  else @{{{field} = #{reader} {state}}} {state}")
        return body

    def semantic_lines() -> list[str]:
        body = ["\\s ->"]
        total = " 0"
        for _ in range(config.reads_per_semantic_fn):
            reader = rng.choice(base_fields)
            total = f" (plus (#{reader} s){total})"
        if config.with_when:
            # A presence-guarded read of an optional (decoder-set) field.
            optional = _field_name(
                config.base_fields + rng.randrange(8)
            )
            body.append(
                f"  let acc = when {optional} in s "
                f"then (plus (#{optional} s){total}) "
                f"else ({total.strip()}) in"
            )
        else:
            body.append(f"  let acc ={total} in")
        body.append("  @{" + rng.choice(base_fields) + " = acc} s")
        return body

    # -- generate until the target size is reached ------------------------
    while len(lines) < config.target_lines - config.dispatch_fanout - 8:
        own_fields = []
        for _ in range(config.fields_per_decoder):
            own_fields.append(_field_name(next_field))
            next_field += 1
        name = f"decode_{decoder_index}"
        decoder_index += 1
        decoders.append(name)
        emit_binding(name, decoder_lines(own_fields))
        if config.with_semantics and rng.random() < 0.5:
            sem_name = f"sem_{semantic_index}"
            semantic_index += 1
            semantic_functions.append(sem_name)
            emit_binding(sem_name, semantic_lines())

    # -- dispatcher --------------------------------------------------------
    dispatch_body = ["\\s ->"]
    pool = decoders + semantic_functions
    chosen = [
        pool[rng.randrange(len(pool))]
        for _ in range(min(config.dispatch_fanout, len(pool)))
    ]
    for name in chosen[:-1]:
        dispatch_body.append(f"  if some_condition then {name} s else")
    dispatch_body.append(f"  {chosen[-1]} s")
    emit_binding("dispatch", dispatch_body)

    lines.append("in")
    lines.append(f"  #{base_fields[0]} (dispatch (dispatch init_state))")
    source = "\n".join(lines) + "\n"
    return GeneratedProgram(
        name=f"decoder[{config.target_lines}]",
        source=source,
        lines=source.count("\n"),
        decoders=len(decoders),
        semantic_functions=len(semantic_functions),
    )
