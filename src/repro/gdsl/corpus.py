"""Seeded multi-module corpora for the audit pipeline.

The audit subsystem (:mod:`repro.audit`) needs corpora that look like a
real module tree rather than one monolithic program: many small module
files, shared declarations that recur across modules, and — for testing
the Judge stage — a *configurable* rate of injected, recognisable type
errors.

Cross-module sharing is textual: the object language has no import
syntax, so a "library" declaration appears verbatim in every module
that uses it.  That is exactly what makes the corpora interesting for
the content-addressed store — byte-identical declarations across
modules hash to the same decl key, so one module's check warms every
other module that shares the declaration — and for finding identity,
where the same defect in two modules must merge into one finding.

Generation is deterministic per seed, and *prefix-stable*: module ``i``
of an N-module corpus is byte-identical to module ``i`` of a larger
corpus with the same seed (each module derives its own rng from
``(seed, i)``), so scaling a benchmark corpus up never invalidates a
warm store for the shared prefix.

Injected errors are designed to exercise specific stable codes:

* a select of a field that provably may be absent (``RP0001``), on a
  field name unique to the module so every injection is a *distinct*
  finding;
* a declaration depending on the broken one (``RP0006``), so dependency
  shadowing shows up in findings too.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from random import Random

#: Stable codes an injected-error module is expected to produce.
INJECTED_CODES = ("RP0001", "RP0006")


@dataclass(frozen=True)
class CorpusConfig:
    """Shape parameters of a generated multi-module corpus."""

    modules: int
    seed: int = 0
    #: Probability that a module gets an injected type error.
    error_rate: float = 0.0
    #: Shared "library" declarations included verbatim in every module.
    library_decls: int = 3
    #: Module-specific (unique-text) declarations per module.
    decls_per_module: int = 3


@dataclass(frozen=True)
class CorpusModule:
    """One generated module file."""

    name: str
    source: str
    #: Stable codes of injected errors (empty for a clean module).
    injected: tuple[str, ...] = ()


@dataclass(frozen=True)
class GeneratedCorpus:
    """A generated corpus plus its metadata."""

    modules: tuple[CorpusModule, ...]
    config: CorpusConfig

    @property
    def injected_modules(self) -> list[str]:
        """Names of the modules that carry an injected error."""
        return [m.name for m in self.modules if m.injected]


def _library_lines(count: int) -> list[str]:
    """The shared declaration pool, identical text in every module."""
    lines = ["mk_state = @{f0 = 0} (@{f1 = 1} ({}))"]
    for index in range(count):
        lines.append(
            f"lib{index} = \\s -> "
            f"@{{lf{index} = plus (#f0 s) {index + 1}}} s"
        )
    return lines


def generate_corpus(config: CorpusConfig) -> GeneratedCorpus:
    """Generate a deterministic multi-module corpus."""
    if config.modules < 1:
        raise ValueError("modules must be >= 1")
    if not 0.0 <= config.error_rate <= 1.0:
        raise ValueError("error_rate must be within [0, 1]")
    library = _library_lines(config.library_decls)
    modules: list[CorpusModule] = []
    for index in range(config.modules):
        # One rng per module, derived from (seed, index): module i's
        # bytes do not depend on how many modules follow it.
        rng = Random(f"{config.seed}:{index}")
        lines = list(library)
        state = "mk_state"
        for step in range(config.decls_per_module):
            library_fn = rng.randrange(max(config.library_decls, 1))
            value = rng.randrange(100)
            name = f"m{index}_d{step}"
            if config.library_decls:
                lines.append(
                    f"{name} = @{{g{step} = {value}}} "
                    f"(lib{library_fn} {state})"
                )
            else:
                lines.append(f"{name} = @{{g{step} = {value}}} {state}")
            state = name
        injected: tuple[str, ...] = ()
        if rng.random() < config.error_rate:
            # A module-unique absent field: each injection is its own
            # finding; the dependent decl adds the RP0006 shadow.
            lines.append(f"m{index}_bug = #missing_{index} {state}")
            lines.append(f"m{index}_use = plus m{index}_bug 1")
            injected = INJECTED_CODES
        else:
            lines.append(f"m{index}_use = #f1 {state}")
        modules.append(
            CorpusModule(
                name=f"mod_{index:05d}.rp",
                source=";\n".join(lines) + "\n",
                injected=injected,
            )
        )
    return GeneratedCorpus(modules=tuple(modules), config=config)


def write_corpus(corpus: GeneratedCorpus, directory: str) -> list[str]:
    """Write every module under ``directory``; returns the paths."""
    os.makedirs(directory, exist_ok=True)
    paths: list[str] = []
    for module in corpus.modules:
        path = os.path.join(directory, module.name)
        with open(path, "w") as handle:
            handle.write(module.source)
        paths.append(path)
    return paths
