"""Request scheduling: a worker pool with a bounded queue.

The daemon enqueues check jobs here; everything about robustness lives in
this one file:

* **backpressure** — the queue is bounded; :meth:`Scheduler.submit`
  refuses instead of blocking when it is full, and the daemon turns the
  refusal into a 429-style ``overloaded`` error the client can retry on;
* **deadline-aware shedding** — with ``shed=True`` the submit path
  consults a per-method EWMA of recent service time
  (:class:`~repro.server.overload.ServiceTimeEstimator`): a job whose
  remaining deadline is below the predicted queue-wait + service time is
  refused *now* (verdict ``"shed"``, with a computed ``retry_after_ms``)
  instead of queueing work that can only 408 — under overload that is
  the difference between goodput and a queue full of doomed requests;
* **deadlines** — every job carries a :class:`~repro.util.Deadline`.  A
  job whose deadline passed while it sat in the queue is answered with a
  timeout *without ever touching a session*; one that expires mid-service
  is interrupted by the inference's cooperative polls;
* **cancellation** — :meth:`cancel` flips the job's deadline token; a
  queued job is dropped at pickup, a running one stops at its next poll;
* **graceful drain** — :meth:`drain` stops intake (submits are refused as
  ``shutting-down``), lets the workers finish every job already accepted,
  and joins them, so an in-flight request is never dropped by shutdown;
* **crash containment** — a :class:`~repro.server.supervisor.WorkerCrash`
  escaping the handler answers the job with a retryable ``worker-crashed``
  error and retires the thread; the
  :class:`~repro.server.supervisor.WorkerSupervisor` respawns it through
  :meth:`dead_workers`/:meth:`respawn`, and reads :meth:`active_jobs` for
  its hang watchdog.

Workers are created with a large thread stack and a high recursion limit
(the right-nested Fig. 9 modules need both), which is why the service
layer is called with ``deep=False`` from here — no per-request deep-stack
thread, unlike the cold CLI path.
"""

from __future__ import annotations

import queue
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..testing.faults import fault_point
from ..util import Deadline
from .metrics import ServerMetrics
from .overload import ServiceTimeEstimator
from .supervisor import WorkerCrash

#: Worker thread stack size (bytes) — matches repro.util.run_deep.
_WORKER_STACK_BYTES = 512 * 1024 * 1024
_WORKER_RECURSION_LIMIT = 1_000_000


@dataclass
class Job:
    """One scheduled request."""

    id: object
    method: str
    params: dict[str, Any]
    deadline: Deadline
    respond: Callable[[dict[str, Any]], None]
    #: Opaque client tag namespacing ``id`` (one per connection).
    client: object = None
    #: Optional per-request resource budget (``repro.util.Budget``).
    budget: Any = None
    enqueued_at: float = field(default_factory=time.monotonic)

    @property
    def key(self) -> tuple:
        return (self.client, self.id)


class Admission:
    """The submit verdict, with the shed prediction riding along.

    Compares equal to its verdict string (``"accepted"``,
    ``"overloaded"``, ``"shutting-down"``, ``"shed"``) so callers that
    only care about the verdict read naturally; the daemon additionally
    reads ``retry_after_ms``/``predicted_ms`` to build the 429 payload.
    """

    __slots__ = ("verdict", "retry_after_ms", "predicted_ms")

    def __init__(
        self,
        verdict: str,
        retry_after_ms: Optional[int] = None,
        predicted_ms: Optional[float] = None,
    ) -> None:
        self.verdict = verdict
        self.retry_after_ms = retry_after_ms
        self.predicted_ms = predicted_ms

    def __eq__(self, other: object) -> bool:
        if isinstance(other, str):
            return self.verdict == other
        if isinstance(other, Admission):
            return self.verdict == other.verdict
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.verdict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Admission({self.verdict!r})"


class Scheduler:
    """Run jobs through ``handler`` on a bounded worker pool.

    ``handler(job, queue_seconds)`` must return the complete response
    dict; it is also responsible for mapping its own failures (including
    deadline/cancellation) to error responses.  The scheduler calls
    ``job.respond`` exactly once per accepted job.
    """

    def __init__(
        self,
        handler: Callable[[Job, float], dict[str, Any]],
        workers: int = 2,
        queue_limit: int = 16,
        metrics: Optional[ServerMetrics] = None,
        on_crash: Optional[Callable[[Job], None]] = None,
        shed: bool = False,
        estimator: Optional[ServiceTimeEstimator] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.handler = handler
        self.metrics = metrics
        #: Deadline-aware admission control (``--shed``).  The estimator
        #: always observes (cheap, and the daemon's brownout controller
        #: reads it), but jobs are only refused when ``shed`` is on.
        self.shed = shed
        self.estimator = estimator or ServiceTimeEstimator()
        #: Called (off the dying thread, before it unwinds) with the job
        #: whose handling crashed a worker; the daemon uses it to feed
        #: the session quarantine.
        self.on_crash = on_crash
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue(
            maxsize=max(queue_limit, 1)
        )
        self._jobs: dict[tuple, Job] = {}
        self._jobs_lock = threading.Lock()
        self._draining = threading.Event()
        self._workers: dict[int, threading.Thread] = {}
        #: worker index -> (job, service start time); the supervisor's
        #: hang watchdog reads this.
        self._active: dict[int, tuple[Job, float]] = {}
        self._worker_count = workers
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for index in range(self._worker_count):
            self._spawn(index)

    def _spawn(self, index: int) -> None:
        """(Re)create worker ``index`` with the deep-stack settings.

        stack_size is process-global state: set around each creation and
        restored, so respawns mid-flight do not leak the big stack onto
        unrelated threads.
        """
        old_stack = threading.stack_size()
        try:
            threading.stack_size(_WORKER_STACK_BYTES)
        except (ValueError, RuntimeError):  # platform refuses: run shallow
            old_stack = None
        try:
            worker = threading.Thread(
                target=self._worker_loop,
                args=(index,),
                name=f"rowpoly-worker-{index}",
                daemon=True,
            )
            worker.start()
            self._workers[index] = worker
        finally:
            if old_stack is not None:
                threading.stack_size(old_stack)

    # -- supervisor hooks ----------------------------------------------
    def dead_workers(self) -> list[int]:
        """Indices whose thread died (crash) and was not yet respawned."""
        if not self._started or self._draining.is_set():
            return []
        return [
            index
            for index, worker in self._workers.items()
            if not worker.is_alive()
        ]

    def respawn(self, index: int) -> None:
        """Replace a dead worker (no-op while draining)."""
        if self._draining.is_set():
            return
        worker = self._workers.get(index)
        if worker is not None and worker.is_alive():
            return
        self._spawn(index)

    def active_jobs(self) -> list[tuple[Job, float]]:
        """Snapshot of (job, service start) pairs currently being served."""
        with self._jobs_lock:
            return list(self._active.values())

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop intake, finish accepted jobs, join the workers.

        Returns ``True`` when every worker exited within ``timeout``.
        """
        self._draining.set()
        if not self._started:
            return True
        for _ in self._workers:
            self._queue.put(None)  # one poison pill per worker, FIFO-last
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        clean = True
        for worker in self._workers.values():
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            worker.join(remaining)
            clean = clean and not worker.is_alive()
        return clean

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def backlog(self) -> int:
        """Jobs accepted but not yet responded to."""
        with self._jobs_lock:
            return len(self._jobs)

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------
    def predicted_response_seconds(self, method: str) -> Optional[float]:
        """EWMA-predicted queue-wait + service time for one new job.

        The new job waits for the current backlog to drain through the
        workers, then gets served itself: ``ewma × (backlog/workers + 1)``.
        ``None`` until the estimator has observed any completion (a cold
        daemon never sheds).
        """
        service = self.estimator.predict(method)
        if service is None:
            return None
        return service * (self.backlog() / self._worker_count + 1.0)

    def submit(self, job: Job) -> Admission:
        """Accept a job, or refuse with a reason.

        Returns an :class:`Admission` that compares equal to
        ``"accepted"``, ``"overloaded"`` (queue full — the backpressure
        signal), ``"shed"`` (deadline-aware admission control: the job
        could not finish in time) or ``"shutting-down"`` (drain
        started).  The refusals carry a computed ``retry_after_ms``
        where the estimator has one.
        """
        fault_point("scheduler.submit")
        if self._draining.is_set():
            return Admission("shutting-down")
        predicted = self.predicted_response_seconds(job.method)
        if self.shed and predicted is not None:
            remaining = job.deadline.remaining()
            if remaining is not None and remaining < predicted:
                # Doomed at admission: by the time this job reached a
                # worker its deadline would already have burned.  Shed
                # now and tell the client when the excess should have
                # drained.
                if self.metrics is not None:
                    self.metrics.record_request(job.method, "shed")
                    self.metrics.record_overload_event("requests_shed")
                excess = predicted - max(remaining, 0.0)
                return Admission(
                    "shed",
                    retry_after_ms=int(excess * 1000.0) + 1,
                    predicted_ms=predicted * 1000.0,
                )
        with self._jobs_lock:
            self._jobs[job.key] = job
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            with self._jobs_lock:
                self._jobs.pop(job.key, None)
            if self.metrics is not None:
                self.metrics.record_request(job.method, "rejected")
            return Admission(
                "overloaded",
                retry_after_ms=(
                    None
                    if predicted is None
                    else int(predicted * 1000.0) + 1
                ),
            )
        return Admission("accepted")

    def cancel(self, client: object, request_id: object) -> bool:
        """Client-initiated cancellation of a queued or running job.

        Idempotent; returns ``True`` when the job was still in flight.
        The job still gets exactly one response (a ``cancelled`` error),
        produced by the worker that picks it up or is running it.
        """
        with self._jobs_lock:
            job = self._jobs.get((client, request_id))
        if job is None:
            return False
        job.deadline.cancel()
        return True

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------
    def _worker_loop(self, index: int) -> None:
        sys.setrecursionlimit(_WORKER_RECURSION_LIMIT)
        while True:
            job = self._queue.get()
            if job is None:
                return
            with self._jobs_lock:
                self._active[index] = (job, time.monotonic())
            queue_seconds = time.monotonic() - job.enqueued_at
            service_started = time.monotonic()
            crash: Optional[WorkerCrash] = None
            try:
                fault_point("scheduler.pickup")
                response = self.handler(job, queue_seconds)
            except WorkerCrash as error:
                # The worker is compromised: answer this job as
                # retryable, let the daemon count the strike, then die —
                # the supervisor respawns a clean replacement.
                from . import protocol

                crash = error
                response = protocol.error_response(
                    job.id,
                    protocol.WORKER_CRASHED,
                    f"worker crashed serving this request: {error}",
                    {"reason": "worker-crash", "retry_after_ms": 50},
                )
                if self.metrics is not None:
                    self.metrics.record_request(job.method, "crashed")
                if self.on_crash is not None:
                    try:
                        self.on_crash(job)
                    except Exception:
                        pass
            except BaseException as error:  # handler bug: answer, keep going
                from . import protocol

                response = protocol.error_response(
                    job.id,
                    protocol.INTERNAL_ERROR,
                    f"unhandled {type(error).__name__}: {error}",
                )
            finally:
                with self._jobs_lock:
                    self._jobs.pop(job.key, None)
                    self._active.pop(index, None)
            if crash is None:
                # Feed the admission-control EWMA with what serving this
                # job actually cost (errors included — effort is effort;
                # crashes excluded — the thread is about to die anyway).
                self.estimator.observe(
                    job.method, time.monotonic() - service_started
                )
            try:
                job.respond(response)
            except (OSError, ValueError):
                pass  # client went away (ValueError: closed file object)
            if crash is not None:
                return  # thread dies (quietly); the supervisor respawns
