"""Adaptive overload control: breakers, service-time EWMA, brownout.

PR 5/6 built the *crash* half of robustness — supervisor respawns,
retries, quarantine — where failure is binary: a worker or shard dies
and is replaced.  This module is the *overload* half, where nothing has
died but the fleet is slower than its traffic, and the right move is to
degrade deliberately instead of falling off a cliff:

* :class:`CircuitBreaker` — the per-shard health state machine the
  router consults before rendezvous routing.  Classic three states:
  **closed** (routable; consecutive probe strikes accumulate), **open**
  (removed from rendezvous candidacy — its keys fail over to their
  second-choice shard, exactly the minimal-disruption property the
  PR 6 routing tests pin down), and **half-open** (the recovery timer
  elapsed; still out of candidacy, but the next successful probe closes
  the breaker and the keys return home).
* :class:`HealthProber` — the router-side probe loop feeding the
  breakers: every ``interval`` seconds it calls each live shard's
  ``stats`` RPC and scores the round trip (transport failure, latency
  above the breaker threshold, or a full queue = one strike).  A shard
  respawn (new generation) gets a fresh breaker: the replacement
  process is innocent until probed.
* :class:`ServiceTimeEstimator` — per-method EWMA of observed service
  time, the prediction behind deadline-aware admission control
  (:meth:`repro.server.scheduler.Scheduler.submit`): a request whose
  remaining deadline is below the predicted queue-wait + service time
  is refused *at submit* with a computed ``retry_after_ms`` instead of
  queueing work that is provably doomed to 408.
* :class:`BrownoutController` — hysteresis for the daemon's degraded
  mode.  Pressure (queue occupancy × EWMA service ms) above the
  threshold for a sustained window enters brownout; pressure below
  ``threshold × exit_ratio`` for the same window exits it.  While
  browned out the daemon tightens per-request budgets so answers come
  from warm caches/stores where possible and partial everywhere else —
  marked ``degraded: true`` and never cached or persisted.

Everything here is pure bookkeeping over an injectable clock, which is
what lets ``tests/server/test_overload.py`` drive every transition
deterministically; only :class:`HealthProber`'s default probe function
touches a socket.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

#: Breaker states.  ``degraded`` is not a stored state: it is how a
#: closed breaker with a non-zero strike count *renders*, so operators
#: can see a shard trending toward open before it gets there.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Bounded length of the prober's transition log (enough for any test
#: or incident review; old transitions roll off).
_TRANSITION_LOG_LIMIT = 256


@dataclass(frozen=True)
class BreakerConfig:
    """Tunables of one shard's circuit breaker (the ``--breaker-*`` flags)."""

    #: Consecutive probe strikes that open the breaker.
    failures: int = 3
    #: Probe round-trip latency above this is a strike.
    latency_ms: float = 250.0
    #: How long an open breaker waits before half-opening.
    recovery_seconds: float = 5.0


class CircuitBreaker:
    """closed → open → half-open → closed, driven by probe outcomes.

    Not thread-safe by itself; :class:`HealthProber` serialises access
    (one probe loop), and routing reads go through the prober's lock.
    """

    def __init__(
        self,
        config: Optional[BreakerConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or BreakerConfig()
        self._clock = clock
        self._state = CLOSED
        self._strikes = 0
        self._opened_at: Optional[float] = None

    # -- reads ---------------------------------------------------------
    @property
    def state(self) -> str:
        """The stored state, advancing open → half-open when due."""
        self._maybe_half_open(self._clock())
        return self._state

    @property
    def strikes(self) -> int:
        return self._strikes

    def allows(self) -> bool:
        """Whether the shard is in rendezvous candidacy right now.

        Half-open deliberately does **not** admit traffic: the probe is
        the trial request, so real traffic only returns after a probe
        confirms recovery — keys "return home on half-open probe
        success", never on a timer alone.
        """
        return self.state == CLOSED

    def render(self) -> str:
        """The operator-facing label (``degraded`` = closed but striking)."""
        state = self.state
        if state == CLOSED and self._strikes > 0:
            return "degraded"
        return state

    # -- transitions ---------------------------------------------------
    def _maybe_half_open(self, now: float) -> Optional[tuple[str, str]]:
        if (
            self._state == OPEN
            and self._opened_at is not None
            and now - self._opened_at >= self.config.recovery_seconds
        ):
            self._state = HALF_OPEN
            return (OPEN, HALF_OPEN)
        return None

    def record(self, healthy: bool) -> list[tuple[str, str]]:
        """Feed one probe outcome; returns the transitions it caused."""
        now = self._clock()
        transitions: list[tuple[str, str]] = []
        timed = self._maybe_half_open(now)
        if timed is not None:
            transitions.append(timed)
        if self._state == CLOSED:
            if healthy:
                self._strikes = 0
            else:
                self._strikes += 1
                if self._strikes >= self.config.failures:
                    self._state = OPEN
                    self._opened_at = now
                    transitions.append((CLOSED, OPEN))
        elif self._state == HALF_OPEN:
            if healthy:
                self._state = CLOSED
                self._strikes = 0
                self._opened_at = None
                transitions.append((HALF_OPEN, CLOSED))
            else:
                self._state = OPEN
                self._opened_at = now
                transitions.append((HALF_OPEN, OPEN))
        # state OPEN before its recovery timer: outcomes are ignored —
        # the breaker is already as open as it gets.
        return transitions


class ServiceTimeEstimator:
    """Per-method EWMA of service seconds (plus a ``*`` combined lane).

    ``observe`` is called by scheduler workers at job completion;
    ``predict`` by the submit path (other threads) — hence the lock.
    Until a method has been observed, ``predict`` falls back to the
    combined lane, and before *any* observation it returns ``None`` so
    admission control stays wide open on a cold daemon.
    """

    COMBINED = "*"

    def __init__(self, alpha: float = 0.2) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._lock = threading.Lock()
        self._ewma: dict[str, float] = {}

    def observe(self, method: str, seconds: float) -> None:
        if seconds < 0.0:
            return
        with self._lock:
            for lane in (method, self.COMBINED):
                previous = self._ewma.get(lane)
                self._ewma[lane] = (
                    seconds
                    if previous is None
                    else previous + self.alpha * (seconds - previous)
                )

    def predict(self, method: str) -> Optional[float]:
        with self._lock:
            value = self._ewma.get(method)
            if value is None:
                value = self._ewma.get(self.COMBINED)
            return value

    def snapshot(self) -> dict[str, float]:
        """EWMA service time per method, in milliseconds."""
        with self._lock:
            return {
                method: value * 1000.0
                for method, value in sorted(self._ewma.items())
            }


class BrownoutController:
    """Sustained-pressure hysteresis for the daemon's degraded mode.

    ``observe(pressure)`` is called from the request path (submit and
    completion), so state only advances while there is traffic to
    observe — which is exactly when brownout matters.  Pressure must
    stay above ``threshold`` for ``window`` seconds to enter, and below
    ``threshold * exit_ratio`` for ``window`` seconds to exit; the gap
    between the two thresholds is what stops the mode from flapping at
    the boundary.
    """

    def __init__(
        self,
        threshold: float,
        window: float = 1.0,
        exit_ratio: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold <= 0.0:
            raise ValueError("brownout threshold must be positive")
        if not 0.0 <= exit_ratio <= 1.0:
            raise ValueError("exit_ratio must be in [0, 1]")
        self.threshold = threshold
        self.window = max(0.0, window)
        self.exit_threshold = threshold * exit_ratio
        self._clock = clock
        self._lock = threading.Lock()
        self._active = False
        self._above_since: Optional[float] = None
        self._below_since: Optional[float] = None
        self._entered_at: Optional[float] = None
        self.last_pressure = 0.0

    @property
    def active(self) -> bool:
        return self._active

    def observe(self, pressure: float) -> list[str]:
        """Feed one pressure sample; returns ``["enter"]``/``["exit"]``
        events (each carrying its own metrics meaning) or ``[]``."""
        now = self._clock()
        events: list[str] = []
        with self._lock:
            self.last_pressure = pressure
            if not self._active:
                if pressure >= self.threshold:
                    if self._above_since is None:
                        self._above_since = now
                    if now - self._above_since >= self.window:
                        self._active = True
                        self._entered_at = now
                        self._above_since = None
                        events.append("enter")
                else:
                    self._above_since = None
            else:
                if pressure < self.exit_threshold:
                    if self._below_since is None:
                        self._below_since = now
                    if now - self._below_since >= self.window:
                        self._active = False
                        self._below_since = None
                        events.append("exit")
                else:
                    self._below_since = None
        return events

    def spell_seconds(self) -> float:
        """Seconds spent in the brownout spell that just ended (or the
        one in progress); consumed by the caller's metrics on ``exit``
        events and at drain via :meth:`flush`."""
        with self._lock:
            if self._entered_at is None:
                return 0.0
            spell = max(0.0, self._clock() - self._entered_at)
            if not self._active:
                self._entered_at = None
            return spell

    def flush(self) -> float:
        """End any in-progress spell (shutdown path); returns its seconds."""
        with self._lock:
            if self._entered_at is None:
                return 0.0
            spell = max(0.0, self._clock() - self._entered_at)
            self._entered_at = None
            self._active = False
            return spell


def default_probe(handle, timeout: float) -> tuple[bool, float, dict]:
    """Probe one shard over its ``stats`` RPC.

    Returns ``(transport_ok, latency_seconds, queue_section)``; a
    refused/dropped/hung connection is ``(False, elapsed, {})``.
    """
    from .client import ServeClient

    started = time.monotonic()
    try:
        with ServeClient(handle.address_text, timeout=timeout) as client:
            snapshot = client.stats()
    except Exception:  # noqa: BLE001 — any probe failure is one strike
        return False, time.monotonic() - started, {}
    queue = snapshot.get("queue")
    return True, time.monotonic() - started, queue if isinstance(queue, dict) else {}


class HealthProber:
    """The router's probe loop: feeds one breaker per shard index.

    * probe outcome → :meth:`CircuitBreaker.record`;
    * transitions → metrics counters (``breaker_open_total`` etc.) and
      a bounded transition log served under the router's stats;
    * routing reads :meth:`allows`; a shard generation change (respawn)
      resets its breaker to closed.

    ``probe_fn(handle, timeout)`` is injectable for tests; the default
    is :func:`default_probe`.
    """

    def __init__(
        self,
        pool,
        interval: float,
        config: Optional[BreakerConfig] = None,
        metrics=None,
        probe_timeout: float = 2.0,
        probe_fn: Callable = default_probe,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.pool = pool
        self.interval = interval
        self.config = config or BreakerConfig()
        self.metrics = metrics
        self.probe_timeout = probe_timeout
        self.probe_fn = probe_fn
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: dict[int, CircuitBreaker] = {}
        self._generations: dict[int, int] = {}
        self._transitions: list[dict] = []
        self._started = clock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, name="rowpoly-health-prober", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 2.0) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout)

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.probe_once()
            except Exception:  # noqa: BLE001 — the probe loop never dies
                pass

    # -- probing -------------------------------------------------------
    def _breaker_for(self, index: int, generation: int) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(index)
            if breaker is None or self._generations.get(index) != generation:
                breaker = CircuitBreaker(self.config, clock=self._clock)
                self._breakers[index] = breaker
                self._generations[index] = generation
            return breaker

    def probe_once(self) -> None:
        """One probe round over the live shard set."""
        for handle in self.pool.live():
            ok, latency, queue = self.probe_fn(handle, self.probe_timeout)
            self.score(handle, ok, latency, queue)

    def score(self, handle, ok: bool, latency: float, queue: dict) -> None:
        """Turn one probe observation into breaker (and metrics) state."""
        backlog = queue.get("backlog", 0) if queue else 0
        limit = queue.get("limit", 0) if queue else 0
        queue_full = bool(limit) and backlog >= limit
        healthy = (
            ok
            and latency * 1000.0 <= self.config.latency_ms
            and not queue_full
        )
        breaker = self._breaker_for(handle.index, handle.generation)
        with self._lock:
            transitions = breaker.record(healthy)
            for old, new in transitions:
                self._transitions.append(
                    {
                        "shard": handle.index,
                        "generation": handle.generation,
                        "from": old,
                        "to": new,
                        "at_seconds": round(self._clock() - self._started, 3),
                    }
                )
            del self._transitions[:-_TRANSITION_LOG_LIMIT]
        if self.metrics is not None:
            for _, new in transitions:
                counter = {
                    OPEN: "breaker_open_total",
                    HALF_OPEN: "breaker_half_open_total",
                    CLOSED: "breaker_close_total",
                }.get(new)
                if counter:
                    self.metrics.record_overload_event(counter)

    # -- routing / stats reads -----------------------------------------
    def allows(self, handle) -> bool:
        """Candidacy of one live shard (no breaker yet = routable)."""
        with self._lock:
            breaker = self._breakers.get(handle.index)
            if (
                breaker is None
                or self._generations.get(handle.index) != handle.generation
            ):
                return True
            return breaker.allows()

    def states(self) -> dict[str, str]:
        """Shard index → rendered breaker state (stats payload)."""
        with self._lock:
            return {
                str(index): breaker.render()
                for index, breaker in sorted(self._breakers.items())
            }

    def transitions(self) -> list[dict]:
        with self._lock:
            return list(self._transitions)
