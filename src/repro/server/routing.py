"""Deterministic session-affinity routing for the sharded daemon.

The router must send every request for one warm-session key to the same
shard — that is what keeps the shard's :class:`~repro.infer.InferSession`
warm — and it must do so *deterministically*: the same key maps to the
same shard across router restarts, across independent processes, and
regardless of ``PYTHONHASHSEED``.  Python's builtin ``hash`` satisfies
none of that, so the weights here come from SHA-256.

The scheme is rendezvous (highest-random-weight) hashing: each
``(key, shard)`` pair gets a pseudo-random 64-bit weight and the key is
routed to the live shard with the highest weight.  Rendezvous hashing has
the *minimal-disruption* property the failure path needs: when shard *s*
dies, only the keys that were mapped to *s* move (each to its
second-highest shard); every other key keeps its warm session.  When *s*
respawns, exactly those keys return to it.

Nothing in this module knows about processes or sockets; it is a pure
function from (key, live shard ids) to a shard id, which is what makes
the property tests in ``tests/server/test_routing.py`` an executable
specification of the affinity contract.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Sequence


def routing_key(
    path: object, engine: object, options: object = None
) -> str:
    """The canonical routing key of one check request.

    Mirrors the warm-session registry key (path, engine, options): two
    requests that would share a warm session route to the same shard.
    Deliberately tolerant of junk params — invalid requests still route
    (to wherever their junk hashes), so the shard's validation answers
    them with byte-identical errors to the single-process daemon.
    """
    return f"{path!r}\x00{engine!r}\x00{options!r}"


def shard_weight(key: str, shard: int) -> int:
    """The 64-bit rendezvous weight of ``key`` on ``shard``."""
    digest = hashlib.sha256(f"{key}\x1f{shard}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def shard_for(key: str, shards: Sequence[int]) -> int:
    """The shard id ``key`` routes to among the live ``shards``.

    Pure and stable: depends only on the arguments.  Raises
    :class:`ValueError` when no shard is live (the router answers that
    case with a retryable error instead of calling here).
    """
    if not shards:
        raise ValueError("no live shards to route to")
    best: Optional[int] = None
    best_weight = -1
    for shard in shards:
        weight = shard_weight(key, shard)
        # Ties (astronomically unlikely) break toward the lower id so the
        # choice stays total-order deterministic.
        if weight > best_weight or (
            weight == best_weight and (best is None or shard < best)
        ):
            best, best_weight = shard, weight
    assert best is not None
    return best


def failover_order(key: str, shards: Sequence[int]) -> list[int]:
    """Every shard of ``shards``, highest rendezvous weight first.

    ``failover_order(key, shards)[0] == shard_for(key, shards)``; the
    rest is the key's failover sequence: when its home shard leaves the
    candidate set (death *or* an open circuit breaker), the key lands on
    the next entry — and because the order depends only on ``key``, the
    key returns home the moment the home shard is re-admitted.  Ties
    break toward the lower id, matching :func:`shard_for`.
    """
    return sorted(
        shards, key=lambda shard: (-shard_weight(key, shard), shard)
    )
