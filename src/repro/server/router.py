"""The front router of the process-sharded daemon (``serve --shards N``).

The single-process daemon keeps all inference behind one GIL: a thread
pool of any size serves ~1 core.  ``rowpoly serve --shards N`` splits the
daemon into this **router** process plus N **shard** processes
(:mod:`repro.server.shard`), shared-nothing: each shard is a complete
:class:`~repro.server.daemon.Daemon` — warm sessions, budgets,
quarantine, thread supervisor — on its own loopback port, and the router
is a thin line-forwarding plane:

* **affinity** — ``check``/``recheck`` requests are routed by rendezvous
  hashing of the warm-session key (:mod:`repro.server.routing`) over the
  *live* shard set, so a module's warm :class:`~repro.infer.InferSession`
  stays pinned to one shard, and a dead shard's keys spill to their
  second-choice shard (cold but correct) until it respawns;
* **byte parity** — responses from shards are passed through as the raw
  wire line, unparsed and unmodified.  The shard runs the same
  :func:`~repro.server.service.check_source` as the offline checker, so
  ``check --server --json`` stays byte-identical to offline for every
  shard count — parity by construction, twice over;
* **fan-out control traffic** — ``stats`` aggregates all shards (plus the
  router's own counters) via
  :func:`~repro.server.metrics.aggregate_snapshots`; ``ping``/unknown
  methods are answered locally; ``shutdown`` drains the fleet;
* **failure containment** — the PR 5 :class:`WorkerSupervisor` monitors
  the shard *processes* (same jittered-backoff respawn loop that it runs
  over worker threads inside each shard): a dead shard is respawned, its
  in-flight requests are answered with a retryable ``worker-crashed``
  (502) as their forwarding links break, and an optional process-level
  hang watchdog (``shard_hang_seconds``) kills a shard that stops
  answering entirely.

Per client connection the router keeps at most one TCP link per shard;
requests are pipelined down the link and responses matched by id on the
way back, so one slow module does not serialise a client's other
requests.  The router itself does no inference — its CPU cost per
request is one ``json.loads`` for routing and one for response
bookkeeping — which is what lets N shards scale to N cores.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..diag import codes as diag_codes
from ..infer.state import FlowOptions
from . import protocol
from ..testing.faults import fault_point
from .client import ServeClient
from .daemon import DaemonConfig
from .metrics import ServerMetrics, aggregate_snapshots
from .overload import BreakerConfig, HealthProber
from .registry import options_key
from .routing import routing_key, shard_for
from .shard import shard_main, spawn_context
from .supervisor import WorkerSupervisor


@dataclass
class RouterConfig:
    """Tunables of one sharded-serving fleet.

    The per-shard fields mirror :class:`DaemonConfig` — every shard gets
    an identical configuration (``workers`` threads, ``sessions`` LRU
    slots, ``queue_limit`` backlog *each*).
    """

    shards: int = 2
    engine: str = "flow"
    workers: int = 2
    queue_limit: int = 16
    sessions: int = 32
    deadline_ms: Optional[float] = None
    track_fields: bool = True
    gc: bool = True
    drain_timeout: float = 30.0
    budget_ms: Optional[float] = None
    budget_solver_steps: Optional[int] = None
    budget_max_clauses: Optional[int] = None
    budget_core_queries: Optional[int] = None
    quarantine_threshold: int = 3
    quarantine_ttl: float = 30.0
    #: Shard-local cooperative hang watchdog (forwarded to each shard).
    hang_seconds: Optional[float] = None
    #: Persistent result store directory, shared by *all* shards (the
    #: store is multi-process safe: atomic-rename writes, advisory
    #: locking on gc only).  ``None`` = memory-only.
    store_dir: Optional[str] = None
    #: Router-level process watchdog: kill a shard whose forwarded
    #: request has been unanswered this long (``None`` = trust the
    #: shard-local mechanisms).  This is the last line of defence — it
    #: fires only when a whole shard process is wedged.
    shard_hang_seconds: Optional[float] = None
    #: Shard ready-handshake timeout (spawn + import + bind).
    start_timeout: float = 60.0
    #: Router→shard connect timeout for forwarding links.
    connect_timeout: float = 10.0
    supervisor_seed: int = 0
    #: Health-probe cadence (seconds); ``0`` disables probing and the
    #: per-shard circuit breakers with it — routing then reacts only to
    #: process death, the pre-overload-control behaviour.
    probe_interval: float = 0.0
    #: Per-probe RPC timeout (a hung probe is a strike).
    probe_timeout: float = 2.0
    #: Consecutive probe strikes that open a shard's breaker.
    breaker_failures: int = 3
    #: Probe round-trip latency counted as a strike.
    breaker_latency_ms: float = 250.0
    #: Open → half-open recovery timer.
    breaker_recovery_seconds: float = 5.0
    #: Shard-side overload control, forwarded into every shard's
    #: :class:`DaemonConfig` (see those fields for semantics).
    shed: bool = False
    brownout_threshold: Optional[float] = None
    brownout_window: float = 1.0
    brownout_exit_ratio: float = 0.5
    brownout_budget_ms: float = 500.0

    def breaker_config(self) -> BreakerConfig:
        return BreakerConfig(
            failures=self.breaker_failures,
            latency_ms=self.breaker_latency_ms,
            recovery_seconds=self.breaker_recovery_seconds,
        )

    def daemon_config(self) -> DaemonConfig:
        """The :class:`DaemonConfig` every shard process runs."""
        return DaemonConfig(
            engine=self.engine,
            workers=self.workers,
            queue_limit=self.queue_limit,
            sessions=self.sessions,
            deadline_ms=self.deadline_ms,
            track_fields=self.track_fields,
            gc=self.gc,
            drain_timeout=self.drain_timeout,
            budget_ms=self.budget_ms,
            budget_solver_steps=self.budget_solver_steps,
            budget_max_clauses=self.budget_max_clauses,
            budget_core_queries=self.budget_core_queries,
            quarantine_threshold=self.quarantine_threshold,
            quarantine_ttl=self.quarantine_ttl,
            hang_seconds=self.hang_seconds,
            store_dir=self.store_dir,
            shed=self.shed,
            brownout_threshold=self.brownout_threshold,
            brownout_window=self.brownout_window,
            brownout_exit_ratio=self.brownout_exit_ratio,
            brownout_budget_ms=self.brownout_budget_ms,
        )


class ShardStartError(RuntimeError):
    """A shard process failed its ready handshake."""


@dataclass
class ShardHandle:
    """One live (or recently dead) shard process."""

    index: int
    generation: int
    process: Any
    address: tuple[str, int]
    pid: int

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    @property
    def address_text(self) -> str:
        return f"{self.address[0]}:{self.address[1]}"


class ShardPool:
    """Lifecycle of the N shard processes (spawn, respawn, retire).

    Routing reads :meth:`live`; the supervisor drives
    :meth:`dead_workers`/:meth:`respawn`; the router's hang watchdog
    uses :meth:`kill`.  Every process comes from the pinned ``spawn``
    context (:func:`repro.server.shard.spawn_context`).
    """

    def __init__(self, config: RouterConfig) -> None:
        self.config = config
        self.context = spawn_context()
        self._lock = threading.Lock()
        self._handles: dict[int, ShardHandle] = {}
        self._generations: dict[int, int] = {}
        self._draining = threading.Event()

    def start(self) -> None:
        for index in range(self.config.shards):
            handle = self._launch(index)
            with self._lock:
                self._handles[index] = handle

    def _launch(self, index: int) -> ShardHandle:
        generation = self._generations.get(index, 0) + 1
        self._generations[index] = generation
        receiver, sender = self.context.Pipe(duplex=False)
        process = self.context.Process(
            target=shard_main,
            args=(index, self.config.daemon_config(), sender),
            name=f"rowpoly-shard-{index}",
            daemon=True,
        )
        process.start()
        sender.close()
        try:
            if not receiver.poll(self.config.start_timeout):
                raise ShardStartError(
                    f"shard {index} did not report ready within "
                    f"{self.config.start_timeout}s"
                )
            message = receiver.recv()
        except (EOFError, OSError) as error:
            process.kill()
            process.join(5.0)
            raise ShardStartError(
                f"shard {index} died during startup: {error}"
            ) from error
        finally:
            receiver.close()
        if not (isinstance(message, tuple) and message[0] == "ready"):
            process.kill()
            process.join(5.0)
            raise ShardStartError(f"shard {index} failed: {message!r}")
        _, host, port, pid = message
        return ShardHandle(
            index=index,
            generation=generation,
            process=process,
            address=(host, port),
            pid=pid,
        )

    # -- routing reads --------------------------------------------------
    def live(self) -> list[ShardHandle]:
        with self._lock:
            return [h for h in self._handles.values() if h.alive]

    def handle(self, index: int) -> Optional[ShardHandle]:
        with self._lock:
            handle = self._handles.get(index)
        return handle if handle is not None and handle.alive else None

    # -- supervisor hooks ----------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def dead_workers(self) -> list[int]:
        if self._draining.is_set():
            return []
        with self._lock:
            return [
                index
                for index, handle in self._handles.items()
                if not handle.alive
            ]

    def respawn(self, index: int) -> None:
        if self._draining.is_set():
            return
        with self._lock:
            current = self._handles.get(index)
            if current is not None and current.alive:
                return
        try:
            handle = self._launch(index)
        except ShardStartError:
            return  # the supervisor's backoff retries
        with self._lock:
            self._handles[index] = handle

    def kill(self, index: int, generation: int) -> bool:
        """SIGKILL a wedged shard (hang watchdog); True when it fired."""
        with self._lock:
            handle = self._handles.get(index)
        if (
            handle is None
            or handle.generation != generation
            or not handle.alive
        ):
            return False
        handle.process.kill()
        return True

    def stop(self, timeout: float = 30.0) -> bool:
        """Drain the fleet: polite shutdown RPC, join, then escalate."""
        self._draining.set()
        with self._lock:
            handles = list(self._handles.values())
        for handle in handles:
            if not handle.alive:
                continue
            try:
                with ServeClient(handle.address_text, timeout=5.0) as client:
                    client.shutdown()
            except (OSError, ValueError, ConnectionError):
                pass
        deadline = time.monotonic() + timeout
        clean = True
        for handle in handles:
            remaining = max(0.0, deadline - time.monotonic())
            handle.process.join(remaining)
            if handle.alive:
                handle.process.terminate()
                handle.process.join(2.0)
            if handle.alive:  # pragma: no cover - wedged beyond SIGTERM
                handle.process.kill()
                handle.process.join(2.0)
                clean = False
        return clean


class _Inflight:
    """One forwarded request awaiting its shard's response."""

    __slots__ = (
        "id", "method", "shard", "generation", "link", "started_at",
    )

    def __init__(self, request_id, method, link) -> None:
        self.id = request_id
        self.method = method
        self.shard = link.index
        self.generation = link.generation
        self.link = link
        self.started_at = time.monotonic()


class _ShardLink:
    """One client connection's pipelined TCP link to one shard.

    Requests are written (pipelined) under a lock; a pump thread reads
    response lines, resolves the in-flight bookkeeping by id, and passes
    the **raw line** through to the client — byte parity costs nothing
    because nothing is re-encoded.
    """

    def __init__(
        self, owner: "_ClientConn", handle: ShardHandle, timeout: float
    ) -> None:
        self.owner = owner
        self.index = handle.index
        self.generation = handle.generation
        self._sock = socket.create_connection(handle.address, timeout=timeout)
        self._sock.settimeout(None)
        self._reader = self._sock.makefile("r", encoding="utf-8")
        self._writer = self._sock.makefile("w", encoding="utf-8")
        self._write_lock = threading.Lock()
        self.dead = False
        threading.Thread(
            target=self._pump,
            name=f"rowpoly-router-pump-{self.index}",
            daemon=True,
        ).start()

    def send(self, line: str) -> None:
        with self._write_lock:
            self._writer.write(line if line.endswith("\n") else line + "\n")
            self._writer.flush()

    def close(self) -> None:
        self.dead = True
        for closable in (self._reader, self._writer, self._sock):
            try:
                closable.close()
            except OSError:
                pass

    def _pump(self) -> None:
        try:
            for line in self._reader:
                if not line.endswith("\n"):
                    break  # shard died mid-line: never forward a torn frame
                self.owner.resolve_line(line, self)
                self.owner.respond_raw(line)
        except (OSError, ValueError):
            pass
        finally:
            self.dead = True
            self.owner.link_died(self)


class _ClientConn:
    """Router-side state of one client connection (TCP or stdio)."""

    def __init__(
        self, router: "Router", write: Callable[[str], None]
    ) -> None:
        self.router = router
        self._write = write
        self._write_lock = threading.Lock()
        self._lock = threading.Lock()
        self._links: dict[int, _ShardLink] = {}
        self._inflight: dict[object, _Inflight] = {}

    # -- client-facing output ------------------------------------------
    def respond_raw(self, line: str) -> None:
        with self._write_lock:
            try:
                self._write(line)
            except (OSError, ValueError):
                pass  # client went away; shards still finish their work

    def respond_json(self, message: dict[str, Any]) -> None:
        self.respond_raw(protocol.encode(message))

    # -- intake ---------------------------------------------------------
    def handle_frame_error(self, error: protocol.ProtocolError) -> None:
        self.router.reject_frame(error, self.respond_json)

    def handle_line(self, line: str) -> None:
        stripped = line.strip()
        if not stripped:
            return
        try:
            request = protocol.parse_request(stripped)
        except protocol.ProtocolError as error:
            self.router.reject_frame(error, self.respond_json)
            return
        method = request.method
        if method in ("check", "recheck"):
            self._forward_check(line, request)
        elif method == "cancel":
            self._forward_cancel(line, request)
        elif method == "stats":
            self.router.metrics.record_request("stats", "ok")
            self.respond_json(
                protocol.ok_response(
                    request.id, self.router.stats_snapshot()
                )
            )
        elif method == "ping":
            self.respond_json(
                protocol.ok_response(request.id, {"pong": True})
            )
        elif method == "shutdown":
            self.respond_json(
                protocol.ok_response(
                    request.id, {"ok": True, "draining": True}
                )
            )
            self.router.request_shutdown()
        else:
            self.router.metrics.record_request(method, "invalid")
            self.respond_json(
                protocol.error_response(
                    request.id,
                    protocol.METHOD_NOT_FOUND,
                    f"unknown method {method!r}",
                )
            )

    # -- the forwarding plane ------------------------------------------
    def _shard_down(self, request: protocol.Request, why: str) -> None:
        self.router.metrics.record_request(request.method, "crashed")
        self.router.metrics.record_robustness("forward_errors")
        self.respond_json(
            protocol.error_response(
                request.id,
                protocol.WORKER_CRASHED,
                f"{why}; retry shortly",
                {"reason": "shard-down", "retry_after_ms": 100},
            )
        )

    def _link_for(self, handle: ShardHandle) -> Optional[_ShardLink]:
        with self._lock:
            link = self._links.get(handle.index)
            if (
                link is not None
                and not link.dead
                and link.generation == handle.generation
            ):
                return link
        try:
            built = _ShardLink(
                self, handle, self.router.config.connect_timeout
            )
        except OSError:
            return None
        with self._lock:
            link = self._links.get(handle.index)
            if (
                link is not None
                and not link.dead
                and link.generation == handle.generation
            ):
                pass  # lost a benign race; use the winner
            else:
                self._links[handle.index] = link = built
        if link is not built:
            built.close()
        return link

    def _forward_check(
        self, line: str, request: protocol.Request
    ) -> None:
        if self.router.shutdown_requested.is_set():
            self.router.metrics.record_request(request.method, "rejected")
            self.respond_json(
                protocol.error_response(
                    request.id,
                    protocol.SHUTTING_DOWN,
                    "daemon is draining; no new requests accepted",
                )
            )
            return
        try:
            # In-process-only chaos hook (the router deliberately never
            # calls install_from_env): an ``error`` rule models a bug in
            # the forwarding plane, answered as a retryable 502; a
            # ``slow`` rule stalls forwarding for watchdog tests.
            fault_point("router.forward")
        except Exception:  # noqa: BLE001 — injected forwarding fault
            self._shard_down(request, "forwarding failed")
            return
        handle = self.router.route(request.params)
        if handle is None:
            self._shard_down(request, "no live shard can serve this request")
            return
        link = self._link_for(handle)
        if link is None:
            self._shard_down(
                request, f"shard {handle.index} is unreachable"
            )
            return
        entry = _Inflight(request.id, request.method, link)
        with self._lock:
            self._inflight[request.id] = entry
        self.router.record_routed(link.index)
        try:
            link.send(line)
        except (OSError, ValueError):
            with self._lock:
                self._inflight.pop(request.id, None)
            link.close()
            self._shard_down(
                request, f"shard {handle.index} dropped the connection"
            )

    def _forward_cancel(
        self, line: str, request: protocol.Request
    ) -> None:
        target = request.params.get("id")
        with self._lock:
            entry = self._inflight.get(target)
            link = None if entry is None else self._links.get(entry.shard)
        if (
            entry is None
            or link is None
            or link.dead
            or link.generation != entry.generation
        ):
            # Nothing in flight (or its shard is gone, which answers the
            # request anyway): same answer the daemon gives for an
            # unknown id.
            self.router.metrics.record_request("cancel", "ok")
            self.respond_json(
                protocol.ok_response(request.id, {"cancelled": False})
            )
            return
        with self._lock:
            self._inflight[request.id] = _Inflight(
                request.id, "cancel", link
            )
        try:
            link.send(line)
        except (OSError, ValueError):
            with self._lock:
                self._inflight.pop(request.id, None)
            self.router.metrics.record_request("cancel", "ok")
            self.respond_json(
                protocol.ok_response(request.id, {"cancelled": False})
            )

    # -- pump callbacks -------------------------------------------------
    def resolve_line(self, line: str, link: _ShardLink) -> None:
        """Retire the in-flight entry a shard's response line answers."""
        import json

        try:
            response_id = json.loads(line).get("id")
        except ValueError:  # pragma: no cover - shards emit valid JSON
            return
        with self._lock:
            entry = self._inflight.get(response_id)
            if entry is not None and entry.link is link:
                self._inflight.pop(response_id, None)

    def link_died(self, link: _ShardLink) -> None:
        """Fail this link's in-flight requests as retryable 502s."""
        with self._lock:
            if self._links.get(link.index) is link:
                self._links.pop(link.index, None)
            orphans = [
                entry
                for entry in self._inflight.values()
                if entry.link is link
            ]
            for entry in orphans:
                self._inflight.pop(entry.id, None)
        for entry in orphans:
            if entry.method == "cancel":
                self.respond_json(
                    protocol.ok_response(entry.id, {"cancelled": False})
                )
                continue
            self.router.metrics.record_request(entry.method, "crashed")
            self.respond_json(
                protocol.error_response(
                    entry.id,
                    protocol.WORKER_CRASHED,
                    f"shard {link.index} died serving this request; "
                    "retry shortly",
                    {"reason": "shard-crash", "retry_after_ms": 100},
                )
            )

    # -- bookkeeping ----------------------------------------------------
    def backlog(self) -> int:
        with self._lock:
            return len(self._inflight)

    def active_jobs(self) -> list[tuple[_Inflight, float]]:
        with self._lock:
            return [
                (entry, entry.started_at)
                for entry in self._inflight.values()
                if entry.method in ("check", "recheck")
            ]

    def close_links(self) -> None:
        with self._lock:
            links, self._links = list(self._links.values()), {}
        for link in links:
            link.close()


class Router:
    """The sharded serving loop: transports in, shard fleet through."""

    def __init__(self, config: Optional[RouterConfig] = None) -> None:
        self.config = config or RouterConfig()
        if self.config.shards < 1:
            raise ValueError("need at least one shard")
        #: Local accounting only — traffic the router answers itself
        #: (frame rejects, control methods, shard-down errors) plus the
        #: ``shard_restarts``/``hung_shards_killed``/``forward_errors``
        #: robustness counters.  Shard-side counters live on the shards
        #: and are merged into :meth:`stats_snapshot`.
        self.metrics = ServerMetrics()
        self.pool = ShardPool(self.config)
        #: Health probes + per-shard circuit breakers (``--probe-interval``).
        #: ``None`` when probing is off: routing falls back to liveness
        #: alone and every live shard stays in rendezvous candidacy.
        self.prober = (
            HealthProber(
                self.pool,
                interval=self.config.probe_interval,
                config=self.config.breaker_config(),
                metrics=self.metrics,
                probe_timeout=self.config.probe_timeout,
            )
            if self.config.probe_interval > 0
            else None
        )
        self.supervisor = WorkerSupervisor(
            self,
            metrics=self.metrics,
            hang_seconds=self.config.shard_hang_seconds,
            seed=self.config.supervisor_seed,
            restart_counter="shard_restarts",
        )
        self.started = time.monotonic()
        self.shutdown_requested = threading.Event()
        self.drained = threading.Event()
        self._shutdown_lock = threading.Lock()
        self._started_flag = False
        self._conns: set[_ClientConn] = set()
        self._conns_lock = threading.Lock()
        self._routed: dict[int, int] = {}
        self._routed_lock = threading.Lock()
        self._final_shard_stats: list[dict] = []
        self._tcp_server: Optional[socketserver.ThreadingTCPServer] = None

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Spawn the shard fleet and its supervisor (idempotent)."""
        if self._started_flag:
            return
        self._started_flag = True
        self.pool.start()
        self.supervisor.start()
        if self.prober is not None:
            self.prober.start()

    # -- supervisor pool protocol --------------------------------------
    @property
    def draining(self) -> bool:
        return self.shutdown_requested.is_set()

    def dead_workers(self) -> list[int]:
        return self.pool.dead_workers()

    def respawn(self, index: int) -> None:
        self.pool.respawn(index)

    def active_jobs(self) -> list[tuple[_Inflight, float]]:
        jobs: list[tuple[_Inflight, float]] = []
        for conn in self._connections():
            jobs.extend(conn.active_jobs())
        return jobs

    def on_hang(self, entry: _Inflight) -> None:
        """Hang watchdog response: kill the wedged shard process.

        The broken links then answer its in-flight requests as
        retryable 502s, and the dead-worker respawn loop brings a clean
        shard back — the process-pool analogue of cancelling a stuck
        thread job.
        """
        if self.pool.kill(entry.shard, entry.generation):
            self.metrics.record_robustness("hung_shards_killed")

    # -- routing --------------------------------------------------------
    def session_routing_key(self, params: dict[str, Any]) -> str:
        """The affinity key of one request's params (junk-tolerant)."""
        raw_options = params.get("options", {})
        if not isinstance(raw_options, dict):
            raw_options = {}
        options = FlowOptions(
            track_fields=bool(
                raw_options.get("track_fields", self.config.track_fields)
            ),
            gc=bool(raw_options.get("gc", self.config.gc)),
        )
        return routing_key(
            params.get("path"),
            params.get("engine", self.config.engine),
            options_key(options),
        )

    def route(self, params: dict[str, Any]) -> Optional[ShardHandle]:
        """The live, breaker-admitted shard this request pins to.

        An open breaker removes its shard from rendezvous candidacy —
        the key's weight ordering then lands it on its next-highest
        shard (the PR 6 minimal-disruption property, reused for
        sickness instead of death).  If *every* live shard's breaker is
        open the filter is waived: serving slowly beats refusing, and
        the breakers re-close on probe recovery anyway.  Returns
        ``None`` only when no shard process is live at all.
        """
        live = self.pool.live()
        if not live:
            return None
        if self.prober is not None:
            admitted = [h for h in live if self.prober.allows(h)]
            if admitted:
                live = admitted
        key = self.session_routing_key(params)
        index = shard_for(key, [handle.index for handle in live])
        for handle in live:
            if handle.index == index:
                return handle
        return None  # pragma: no cover - index came from `live`

    def record_routed(self, index: int) -> None:
        with self._routed_lock:
            self._routed[index] = self._routed.get(index, 0) + 1

    # -- frame rejection (parity with the daemon's) --------------------
    def reject_frame(
        self,
        error: protocol.ProtocolError,
        respond: Callable[[dict[str, Any]], None],
    ) -> None:
        self.metrics.record_request("?", "invalid")
        self.metrics.record_robustness("frames_rejected")
        respond(
            protocol.error_response(
                error.request_id,
                error.code,
                str(error),
                {"rp": diag_codes.MALFORMED_FRAME},
            )
        )

    # -- stats ----------------------------------------------------------
    def shard_stats(self) -> list[dict]:
        """One ``stats`` snapshot per live shard (tagged with identity)."""
        snapshots = []
        for handle in self.pool.live():
            try:
                with ServeClient(handle.address_text, timeout=5.0) as client:
                    snapshot = dict(client.stats())
            except (OSError, ValueError, ConnectionError, Exception) as error:
                snapshot = {
                    "error": f"{type(error).__name__}: {error}",
                }
            snapshot["shard"] = handle.index
            snapshot["pid"] = handle.pid
            snapshot["generation"] = handle.generation
            snapshots.append(snapshot)
        return snapshots

    def stats_snapshot(self) -> dict[str, object]:
        """The ``stats`` RPC payload: fleet aggregate + per-shard views.

        The aggregate sums every shard's counters with the router's own
        local metrics, so fleet totals (requests, sessions, robustness,
        diagnostics, solver rollup) read like a single daemon's; the
        untouched per-shard snapshots ride along under ``"shards"``.
        Counters of a shard generation that *crashed* die with it —
        shared-nothing cuts both ways — while a graceful drain harvests
        final shard stats first.
        """
        shard_snaps = self.shard_stats()
        healthy = [dict(s) for s in shard_snaps if "error" not in s]
        aggregate = aggregate_snapshots(
            healthy
            + [dict(s) for s in self._final_shard_stats]
            + [self.metrics.snapshot()]
        )
        for noise in ("shard", "pid", "generation"):
            aggregate.pop(noise, None)
        aggregate["uptime_seconds"] = time.monotonic() - self.started
        with self._routed_lock:
            routed = {
                str(index): count
                for index, count in sorted(self._routed.items())
            }
        live = self.pool.live()
        aggregate["router"] = {
            "shards": self.config.shards,
            "live_shards": len(live),
            "restarts": self.supervisor.restarts_total,
            "routed": routed,
            "pids": {str(h.index): h.pid for h in live},
        }
        if self.prober is not None:
            aggregate["router"]["breakers"] = self.prober.states()
            aggregate["router"]["breaker_transitions"] = (
                self.prober.transitions()
            )
        aggregate["shards"] = shard_snaps
        return aggregate

    def render_text(self) -> str:
        """The human-readable dump written at shutdown."""
        snap = self.stats_snapshot()
        router = snap["router"]
        lines = [
            "rowpoly serve metrics "
            f"(sharded; uptime {snap['uptime_seconds']:.1f}s)",
            f"  shards: {router['live_shards']}/{router['shards']} live, "
            f"restarts={router['restarts']}, "
            f"routed={router['routed'] or {}}",
        ]
        if router.get("breakers"):
            detail = ", ".join(
                f"{index}={state}"
                for index, state in router["breakers"].items()
            )
            transitions = len(router.get("breaker_transitions") or [])
            lines.append(
                f"  breakers: {detail} ({transitions} transitions)"
            )
        overload = snap.get("overload") or {}
        if any(overload.values()):
            detail = ", ".join(
                f"{name}={count:.3f}" if isinstance(count, float)
                else f"{name}={count}"
                for name, count in sorted(overload.items())
                if count
            )
            lines.append(f"  overload: {detail}")
        for method, statuses in sorted(
            (snap.get("requests") or {}).items()
        ):
            total = sum(statuses.values())
            detail = ", ".join(
                f"{status}={count}"
                for status, count in sorted(statuses.items())
                if count
            )
            lines.append(f"  {method}: {total} requests ({detail})")
        sessions = snap.get("sessions") or {}
        if sessions:
            lines.append(
                f"  sessions: hit_rate={sessions.get('hit_rate', 0.0):.2f} "
                f"(hits={sessions.get('hits', 0)}, "
                f"misses={sessions.get('misses', 0)}, "
                f"evictions={sessions.get('evictions', 0)}, "
                f"invalidations={sessions.get('invalidations', 0)})"
            )
        store = snap.get("store") or {}
        if any(v for k, v in store.items() if k != "hit_rate"):
            lines.append(
                f"  store: hit_rate={store.get('hit_rate', 0.0):.2f} "
                f"(hits={store.get('hits', 0)}, "
                f"misses={store.get('misses', 0)}, "
                f"evictions={store.get('evictions', 0)}, "
                f"corrupt_entries={store.get('corrupt_entries', 0)})"
            )
        robustness = snap.get("robustness") or {}
        if any(robustness.values()):
            detail = ", ".join(
                f"{name}={count}"
                for name, count in sorted(robustness.items())
                if count
            )
            lines.append(f"  robustness: {detail}")
        return "\n".join(lines)

    # -- connection registry -------------------------------------------
    def _connections(self) -> list[_ClientConn]:
        with self._conns_lock:
            return list(self._conns)

    def _register(self, conn: _ClientConn) -> None:
        with self._conns_lock:
            self._conns.add(conn)

    def _unregister(self, conn: _ClientConn) -> None:
        with self._conns_lock:
            self._conns.discard(conn)
        conn.close_links()

    def backlog(self) -> int:
        return sum(conn.backlog() for conn in self._connections())

    # -- transports -----------------------------------------------------
    def serve_stdio(self, stdin=None, stdout=None) -> None:
        """Serve newline-delimited JSON-RPC on stdio until EOF/shutdown."""
        import sys

        stdin = stdin if stdin is not None else sys.stdin
        stdout = stdout if stdout is not None else sys.stdout

        def write(text: str) -> None:
            stdout.write(text)
            stdout.flush()

        self.start()
        conn = _ClientConn(self, write)
        self._register(conn)
        try:
            for line, frame_error in protocol.iter_frames(stdin):
                if frame_error is not None:
                    conn.handle_frame_error(frame_error)
                else:
                    conn.handle_line(line)
                if self.shutdown_requested.is_set():
                    break
            self._drain()  # in-flight responses still stream to stdout
        finally:
            self._unregister(conn)

    def serve_tcp(
        self, host: str = "127.0.0.1", port: int = 0, background: bool = False
    ) -> tuple[str, int]:
        """Serve over TCP; returns the bound (host, port)."""
        router = self

        class _Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:
                def write(text: str) -> None:
                    self.wfile.write(text.encode())
                    self.wfile.flush()

                conn = _ClientConn(router, write)
                router._register(conn)
                try:
                    for line, frame_error in protocol.iter_frames(
                        self.rfile
                    ):
                        if frame_error is not None:
                            conn.handle_frame_error(frame_error)
                        else:
                            conn.handle_line(line)
                        if router.shutdown_requested.is_set():
                            break
                finally:
                    router._unregister(conn)

        class _Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self.start()
        server = _Server((host, port), _Handler)
        self._tcp_server = server
        bound = server.server_address[:2]
        if background:
            threading.Thread(
                target=server.serve_forever,
                name="rowpoly-router-acceptor",
                daemon=True,
            ).start()
        else:
            try:
                server.serve_forever()
            finally:
                server.server_close()
        return bound

    # -- shutdown -------------------------------------------------------
    def request_shutdown(self) -> None:
        """Begin a graceful fleet drain without blocking the caller."""
        with self._shutdown_lock:
            if self.shutdown_requested.is_set():
                return
            self.shutdown_requested.set()
        threading.Thread(
            target=self._drain, name="rowpoly-router-drain", daemon=False
        ).start()

    def _drain(self) -> None:
        with self._shutdown_lock:
            if self.drained.is_set():
                return
            self.shutdown_requested.set()
            self.supervisor.stop(timeout=1.0)
            if self.prober is not None:
                self.prober.stop()
            deadline = time.monotonic() + self.config.drain_timeout
            while time.monotonic() < deadline and self.backlog() > 0:
                time.sleep(0.02)
            # Harvest final counters before retiring the fleet — a
            # drained shard's stats survive into the router's last dump.
            self._final_shard_stats = [
                snapshot
                for snapshot in self.shard_stats()
                if "error" not in snapshot
            ]
            self.pool.stop(timeout=self.config.drain_timeout)
            server, self._tcp_server = self._tcp_server, None
            if server is not None:
                server.shutdown()
                server.server_close()
            self.drained.set()

    def wait_drained(self, timeout: Optional[float] = None) -> bool:
        return self.drained.wait(timeout)
