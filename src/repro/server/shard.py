"""One shard worker process of the sharded daemon.

A shard is simply the PR 3–5 :class:`~repro.server.daemon.Daemon` —
warm-session registry, bounded worker pool, budgets, quarantine, thread
supervisor and all — running in its own process on a loopback TCP port,
so N shards use N cores with no GIL in common.  When the fleet has a
persistent result store (``--store``), every shard opens the *same*
directory through its :class:`DaemonConfig` — safe because the store's
writes are atomic renames of self-verifying entries and only gc takes a
lock — so one shard's solve warms all its peers (and their respawns).  The router
(:mod:`repro.server.router`) speaks the ordinary newline-delimited
JSON-RPC to it; nothing in the daemon knows it is a shard.

Shard processes are started with the ``spawn`` multiprocessing start
method, pinned explicitly: ``fork`` would duplicate the router's threads,
locks and sockets into the child (a classic deadlock factory), behaves
differently on macOS, and is being phased out as the POSIX default.
``spawn`` gives every shard a clean interpreter whose only inheritance is
the environment — which is exactly the channel the chaos harness uses
(``ROWPOLY_FAULTS``), so injected faults reach shards and the router
process stays immune.

The handshake is one message on a :func:`multiprocessing.Pipe`: the child
binds an ephemeral port and sends ``("ready", host, port, pid)``; a child
that cannot start sends ``("error", reason)`` instead of leaving the
router to infer failure from silence.
"""

from __future__ import annotations

import multiprocessing
import os
import signal

from .daemon import Daemon, DaemonConfig

#: The pinned multiprocessing start method for shard processes (and for
#: the ``check --jobs`` process pool — see :data:`repro.cli`): identical
#: behaviour on Linux/macOS and under future Python defaults.
START_METHOD = "spawn"


def spawn_context() -> multiprocessing.context.BaseContext:
    """The explicit ``spawn`` multiprocessing context.

    Every process the serving stack creates goes through this — never
    the ambient default, which is platform- and version-dependent.
    """
    return multiprocessing.get_context(START_METHOD)


def shard_main(index: int, config: DaemonConfig, conn) -> None:
    """Entry point of one spawned shard process.

    Runs a full :class:`Daemon` on ``127.0.0.1:<ephemeral>``, reports the
    bound address (and pid) through ``conn``, then serves until drained.
    SIGTERM triggers the daemon's graceful drain; SIGINT is ignored so a
    terminal Ctrl-C reaches only the router, which drains its shards
    deliberately (shutdown RPC) rather than racing a signal broadcast.
    """
    from ..testing.faults import install_from_env

    # Per-shard fault targeting: ``ROWPOLY_FAULTS_SHARD_<index>``
    # overrides the fleet-wide ``ROWPOLY_FAULTS`` for exactly this shard
    # index (surviving respawns — the replacement process re-reads it).
    # The overload chaos arm uses this to slow one shard and watch the
    # router's breaker evict and re-adopt it while its peers stay clean.
    targeted = os.environ.get(f"ROWPOLY_FAULTS_SHARD_{index}")
    if targeted is not None:
        environ = dict(os.environ)
        environ["ROWPOLY_FAULTS"] = targeted
        install_from_env(environ)
    else:
        install_from_env(os.environ)
    try:
        daemon = Daemon(config)
        host, port = daemon.serve_tcp("127.0.0.1", 0, background=True)
    except Exception as error:  # noqa: BLE001 — reported, then fatal
        try:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        finally:
            conn.close()
        raise SystemExit(1)

    def on_sigterm(signum, frame):
        daemon.request_shutdown()

    signal.signal(signal.SIGTERM, on_sigterm)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    conn.send(("ready", host, port, os.getpid()))
    conn.close()
    while not daemon.drained.wait(0.5):
        pass
