"""The persistent inference daemon behind ``rowpoly serve``.

One long-lived process, two transports (newline-delimited JSON-RPC over
stdio or TCP), one shared worker pool.  ``check``/``recheck`` requests go
through the :class:`~repro.server.scheduler.Scheduler`; the control
methods (``cancel``, ``stats``, ``ping``, ``shutdown``) are answered
inline so they work even when the queue is saturated — you can always ask
a drowning daemon how it is drowning.

Request lifecycle for ``check``:

1. decode + validate (bad params are answered immediately),
2. submit to the bounded queue — full queue answers ``overloaded`` (429),
   a draining daemon answers ``shutting-down`` (503),
3. a worker resolves the module's warm session in the LRU registry:
   an identical source fingerprint replays the stored outcome without
   touching the engine; otherwise :func:`~repro.server.service.check_source`
   runs on the warm session under the request's deadline,
4. deadline expiry / client cancellation surface as structured 408/499
   errors; the session is left consistent either way (see
   :meth:`repro.infer.session.InferSession.check`), so the next request
   on that module simply resumes.

Resource governance rides the same lifecycle: each request gets a
:class:`~repro.util.Budget` (from ``--budget-*`` defaults or its own
``budget`` params); exhaustion yields a *partial* report with ``aborted``
declarations (RP0998) served as a normal response, never stored as a
replay outcome.  A :class:`~repro.server.supervisor.WorkerSupervisor`
respawns crashed workers, and a
:class:`~repro.server.supervisor.SessionQuarantine` benches session keys
that repeatedly crash workers or trip budgets (423 with
``retry_after_ms``); a single trip never quarantines.

Shutdown (EOF, ``shutdown`` RPC, or SIGTERM via ``rowpoly serve``) drains:
intake stops, accepted jobs finish and are answered, workers join, and
the metrics subsystem dumps its final report.
"""

from __future__ import annotations

import socketserver
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..diag import codes as diag_codes
from ..infer.registry import REGISTRY, UnknownEngineError, unknown_engine_message
from ..infer.state import FlowOptions
from ..testing.faults import fault_point
from ..util import (
    Budget,
    BudgetExceeded,
    Cancelled,
    DeadlineExceeded,
    Deadline,
    tighten,
)
from . import protocol
from .metrics import ServerMetrics
from .overload import BrownoutController
from .registry import SessionRegistry, options_key
from .scheduler import Job, Scheduler
from .service import (
    EXIT_USAGE,
    CheckOutcome,
    check_source,
    diagnostic_codes,
    fingerprint_source,
    report_aborted,
)
from .supervisor import SessionQuarantine, WorkerSupervisor


@dataclass
class DaemonConfig:
    """Tunables of one daemon instance (the ``rowpoly serve`` flags)."""

    engine: str = "flow"
    workers: int = 2
    queue_limit: int = 16
    sessions: int = 32
    #: Default per-request wall-clock budget; ``None`` = unbounded.
    deadline_ms: Optional[float] = None
    track_fields: bool = True
    gc: bool = True
    #: Drain budget at shutdown before giving up on stuck workers.
    drain_timeout: float = 30.0
    #: Default per-request resource budget components (``--budget-*``
    #: flags); all ``None`` = ungoverned.  A request's ``budget`` params
    #: override these wholesale.
    budget_ms: Optional[float] = None
    budget_solver_steps: Optional[int] = None
    budget_max_clauses: Optional[int] = None
    budget_core_queries: Optional[int] = None
    #: Session quarantine: strikes before a key is benched, and for how
    #: long.  ``quarantine_threshold=0`` disables quarantining.
    quarantine_threshold: int = 3
    quarantine_ttl: float = 30.0
    #: Hang watchdog: cancel a job served longer than this (``None`` =
    #: trust deadlines alone).
    hang_seconds: Optional[float] = None
    #: Directory of the persistent result store (``--store``); ``None``
    #: = memory-only caching, the pre-store behaviour.  Safe to share
    #: between processes: every shard of ``serve --shards N`` (and any
    #: number of unrelated daemons or CI runs) may point at one
    #: directory.
    store_dir: Optional[str] = None
    #: Deadline-aware load shedding (``--shed``): refuse at submit any
    #: job whose remaining deadline is below the EWMA-predicted
    #: queue-wait + service time (retryable 429 with ``retry_after_ms``).
    shed: bool = False
    #: Brownout threshold on pressure = queue occupancy × EWMA service
    #: ms (``--brownout-threshold``); ``None`` disables brownout.
    brownout_threshold: Optional[float] = None
    #: Pressure must hold above/below threshold this long to enter/exit.
    brownout_window: float = 1.0
    #: Exit hysteresis: leave brownout below ``threshold × exit_ratio``.
    brownout_exit_ratio: float = 0.5
    #: Per-request wall-clock cap applied *during* brownout (min-combined
    #: with the request's own budget); partial answers it causes are
    #: marked ``degraded: true`` and never cached or persisted.
    brownout_budget_ms: float = 500.0

    def brownout_budget(self) -> Budget:
        """A fresh brownout-tightened budget cap (clock starts now)."""
        return Budget(seconds=self.brownout_budget_ms / 1000.0)

    def default_budget(self) -> Optional[Budget]:
        """A fresh :class:`Budget` from the config defaults, or ``None``."""
        if (
            self.budget_ms is None
            and self.budget_solver_steps is None
            and self.budget_max_clauses is None
            and self.budget_core_queries is None
        ):
            return None
        return Budget(
            seconds=(
                None if self.budget_ms is None else self.budget_ms / 1000.0
            ),
            solver_steps=self.budget_solver_steps,
            max_clauses=self.budget_max_clauses,
            core_queries=self.budget_core_queries,
        )


class _InvalidParams(Exception):
    pass


class Daemon:
    """The serving loop: transports in, scheduler through, metrics out."""

    def __init__(
        self,
        config: Optional[DaemonConfig] = None,
        metrics: Optional[ServerMetrics] = None,
    ) -> None:
        self.config = config or DaemonConfig()
        if self.config.engine not in REGISTRY.session_names():
            raise UnknownEngineError(
                self.config.engine, REGISTRY.session_names())
        self.metrics = metrics or ServerMetrics()
        self.store = None
        if self.config.store_dir:
            from ..store import open_store

            self.store = open_store(
                self.config.store_dir,
                metrics_hook=self.metrics.record_store_event,
            )
        self.registry = SessionRegistry(
            self.config.sessions, self.metrics, store=self.store
        )
        self.scheduler = Scheduler(
            self._run_check_job,
            workers=self.config.workers,
            queue_limit=self.config.queue_limit,
            metrics=self.metrics,
            on_crash=self._record_crash_strike,
            shed=self.config.shed,
        )
        self.brownout = (
            BrownoutController(
                self.config.brownout_threshold,
                window=self.config.brownout_window,
                exit_ratio=self.config.brownout_exit_ratio,
            )
            if self.config.brownout_threshold is not None
            else None
        )
        self.quarantine = (
            SessionQuarantine(
                threshold=self.config.quarantine_threshold,
                ttl=self.config.quarantine_ttl,
                metrics=self.metrics,
            )
            if self.config.quarantine_threshold > 0
            else None
        )
        self.supervisor = WorkerSupervisor(
            self.scheduler,
            metrics=self.metrics,
            hang_seconds=self.config.hang_seconds,
        )
        self.shutdown_requested = threading.Event()
        self.drained = threading.Event()
        self._shutdown_lock = threading.Lock()
        self._tcp_server: Optional[socketserver.ThreadingTCPServer] = None

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    def handle_line(
        self,
        line: str,
        respond: Callable[[dict[str, Any]], None],
        client: object = None,
    ) -> None:
        """Decode and dispatch one request line (transport-agnostic)."""
        line = line.strip()
        if not line:
            return
        # Chaos hook: an "exit" rule here kills the whole process mid
        # request — the shard-death site the sharded router's chaos
        # suite drives (a thread-level "crash" only costs one worker).
        fault_point("daemon.handle")
        try:
            request = protocol.parse_request(line)
        except protocol.ProtocolError as error:
            self.metrics.record_request("?", "invalid")
            self.metrics.record_robustness("frames_rejected")
            respond(
                protocol.error_response(
                    error.request_id,
                    error.code,
                    str(error),
                    {"rp": diag_codes.MALFORMED_FRAME},
                )
            )
            return
        self._dispatch(request, respond, client)

    def reject_frame(
        self,
        error: protocol.ProtocolError,
        respond: Callable[[dict[str, Any]], None],
    ) -> None:
        """Answer an unparseable/oversized frame without dispatching it."""
        self.metrics.record_request("?", "invalid")
        self.metrics.record_robustness("frames_rejected")
        respond(
            protocol.error_response(
                error.request_id,
                error.code,
                str(error),
                {"rp": diag_codes.MALFORMED_FRAME},
            )
        )

    def _dispatch(
        self,
        request: protocol.Request,
        respond: Callable[[dict[str, Any]], None],
        client: object,
    ) -> None:
        method = request.method
        if method in ("check", "recheck"):
            self._dispatch_check(request, respond, client)
        elif method == "cancel":
            target = request.params.get("id")
            cancelled = self.scheduler.cancel(client, target)
            self.metrics.record_request("cancel", "ok")
            respond(protocol.ok_response(request.id, {"cancelled": cancelled}))
        elif method == "stats":
            self.metrics.record_request("stats", "ok")
            respond(protocol.ok_response(request.id, self.stats_snapshot()))
        elif method == "ping":
            respond(protocol.ok_response(request.id, {"pong": True}))
        elif method == "shutdown":
            # Answer first — the drain below may be the last thing we do.
            respond(
                protocol.ok_response(
                    request.id, {"ok": True, "draining": True}
                )
            )
            self.request_shutdown()
        else:
            self.metrics.record_request(method, "invalid")
            respond(
                protocol.error_response(
                    request.id,
                    protocol.METHOD_NOT_FOUND,
                    f"unknown method {method!r}",
                )
            )

    def _dispatch_check(
        self,
        request: protocol.Request,
        respond: Callable[[dict[str, Any]], None],
        client: object,
    ) -> None:
        deadline_ms = request.params.get("deadline_ms", self.config.deadline_ms)
        if deadline_ms is not None and (
            not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0
        ):
            self.metrics.record_request(request.method, "invalid")
            respond(
                protocol.error_response(
                    request.id,
                    protocol.INVALID_PARAMS,
                    "'deadline_ms' must be a positive number",
                )
            )
            return
        raw_budget = request.params.get("budget")
        if raw_budget is not None and not isinstance(raw_budget, dict):
            self.metrics.record_request(request.method, "invalid")
            respond(
                protocol.error_response(
                    request.id,
                    protocol.INVALID_PARAMS,
                    "'budget' must be a JSON object",
                )
            )
            return
        if raw_budget is not None:
            try:
                budget = Budget.from_params(raw_budget)
            except ValueError as error:
                self.metrics.record_request(request.method, "invalid")
                respond(
                    protocol.error_response(
                        request.id,
                        protocol.INVALID_PARAMS,
                        f"bad 'budget': {error}",
                    )
                )
                return
        else:
            budget = self.config.default_budget()
        retry = request.params.get("retry")
        if isinstance(retry, int) and retry > 0:
            self.metrics.record_robustness("client_retries")
        job = Job(
            id=request.id,
            method=request.method,
            params=request.params,
            deadline=Deadline(
                None if deadline_ms is None else deadline_ms / 1000.0
            ),
            respond=respond,
            client=client,
            budget=budget,
        )
        self._observe_pressure()
        try:
            verdict = self.scheduler.submit(job)
        except Exception as error:  # noqa: BLE001 — injected submit fault
            self.metrics.record_request(request.method, "error")
            respond(
                protocol.error_response(
                    request.id,
                    protocol.INTERNAL_ERROR,
                    f"{type(error).__name__}: {error}",
                )
            )
            return
        if verdict == "shed":
            data: dict[str, Any] = {
                "reason": "shed",
                "retry_after_ms": verdict.retry_after_ms,
            }
            if verdict.predicted_ms is not None:
                data["predicted_ms"] = round(verdict.predicted_ms, 3)
            respond(
                protocol.error_response(
                    request.id,
                    protocol.OVERLOADED,
                    "predicted completion exceeds the request deadline; "
                    "shed at admission",
                    data,
                )
            )
        elif verdict == "overloaded":
            data = {
                "reason": "queue-full",
                "queue_limit": self.config.queue_limit,
            }
            if verdict.retry_after_ms is not None:
                data["retry_after_ms"] = verdict.retry_after_ms
            respond(
                protocol.error_response(
                    request.id,
                    protocol.OVERLOADED,
                    "request queue is full; retry later",
                    data,
                )
            )
        elif verdict == "shutting-down":
            self.metrics.record_request(request.method, "rejected")
            respond(
                protocol.error_response(
                    request.id,
                    protocol.SHUTTING_DOWN,
                    "daemon is draining; no new requests accepted",
                )
            )

    # ------------------------------------------------------------------
    # the scheduler's handler (runs on worker threads)
    # ------------------------------------------------------------------
    def _check_params(self, params: dict[str, Any]) -> tuple:
        path = params.get("path")
        if not isinstance(path, str) or not path:
            raise _InvalidParams("'path' must be a non-empty string")
        source = params.get("source")
        if source is not None and not isinstance(source, str):
            raise _InvalidParams("'source' must be a string when given")
        engine = params.get("engine", self.config.engine)
        if engine not in REGISTRY.session_names():
            raise _InvalidParams(
                unknown_engine_message(engine, REGISTRY.session_names())
            )
        raw_options = params.get("options", {})
        if not isinstance(raw_options, dict):
            raise _InvalidParams("'options' must be a JSON object")
        options = FlowOptions(
            track_fields=bool(
                raw_options.get("track_fields", self.config.track_fields)
            ),
            gc=bool(raw_options.get("gc", self.config.gc)),
        )
        return path, source, engine, options

    def _session_key(self, params: dict[str, Any]) -> Optional[tuple]:
        """The registry key a request resolves to, or ``None`` on junk.

        Deliberately tolerant: quarantine bookkeeping must work even for
        requests that die before (or during) validation.
        """
        path = params.get("path")
        if not isinstance(path, str) or not path:
            return None
        engine = params.get("engine", self.config.engine)
        raw_options = params.get("options", {})
        if not isinstance(raw_options, dict):
            raw_options = {}
        options = FlowOptions(
            track_fields=bool(
                raw_options.get("track_fields", self.config.track_fields)
            ),
            gc=bool(raw_options.get("gc", self.config.gc)),
        )
        return (path, engine, options_key(options))

    def _record_crash_strike(self, job: Job) -> None:
        """Scheduler callback: a worker died serving ``job``."""
        if self.quarantine is None:
            return
        key = self._session_key(job.params)
        if key is not None:
            self.quarantine.record_failure(key)

    # ------------------------------------------------------------------
    # overload control
    # ------------------------------------------------------------------
    def _observe_pressure(self) -> None:
        """Feed the brownout controller one pressure sample.

        Pressure = queue occupancy (backlog / queue_limit) × EWMA
        service milliseconds — dimensionally "how many milliseconds of
        work is the queue holding per slot", which stays ~0 on an idle
        or fast daemon and climbs only when the queue is both deep and
        slow.  Sampled on every submit and completion, so the
        hysteresis windows advance exactly while there is traffic.
        """
        if self.brownout is None:
            return
        occupancy = self.scheduler.backlog() / max(
            1, self.config.queue_limit
        )
        ewma = self.scheduler.estimator.predict(
            self.scheduler.estimator.COMBINED
        )
        pressure = occupancy * (ewma or 0.0) * 1000.0
        for event in self.brownout.observe(pressure):
            if event == "enter":
                self.metrics.record_overload_event("brownout_entries")
            elif event == "exit":
                self.metrics.record_overload_event("brownout_exits")
                self.metrics.record_overload_event(
                    "brownout_seconds", self.brownout.spell_seconds()
                )

    def stats_snapshot(self) -> dict[str, Any]:
        """The ``stats`` RPC payload: metrics plus live overload gauges.

        The ``queue`` section is what the router's health probes read
        (backlog vs limit); ``brownout_active`` rides in the summed
        ``overload`` section as an integer gauge, so a fleet aggregate
        reads as "how many shards are browned out right now".
        """
        snapshot = self.metrics.snapshot()
        snapshot["queue"] = {
            "backlog": self.scheduler.backlog(),
            "limit": self.config.queue_limit,
            "workers": self.config.workers,
            # Per-shard gauge, deliberately outside the summed sections:
            # EWMAs do not add across shards.
            "service_ewma_ms": {
                method: round(value, 3)
                for method, value in
                self.scheduler.estimator.snapshot().items()
            },
        }
        overload = snapshot.setdefault("overload", {})
        if isinstance(overload, dict):
            overload["brownout_active"] = int(
                self.brownout is not None and self.brownout.active
            )
        return snapshot

    def _run_check_job(
        self, job: Job, queue_seconds: float
    ) -> dict[str, Any]:
        started = time.monotonic()

        def finish(status: str) -> None:
            self.metrics.record_request(
                job.method,
                status,
                queue_seconds,
                time.monotonic() - started,
            )
            # Completion-side pressure sample: lets brownout *exit* even
            # when intake has gone quiet (the queue drained).
            self._observe_pressure()

        quarantine_key = self._session_key(job.params)
        if self.quarantine is not None and quarantine_key is not None:
            remaining = self.quarantine.blocked(quarantine_key)
            if remaining is not None:
                finish("quarantined")
                return protocol.error_response(
                    job.id,
                    protocol.QUARANTINED,
                    "session is quarantined after repeated failures; "
                    "retry later",
                    {
                        "reason": "quarantined",
                        "retry_after_ms": int(remaining * 1000) + 1,
                        "path": job.params.get("path"),
                    },
                )
        # Brownout: tighten the request's budget *at service start* so a
        # browned-out daemon spends at most ``brownout_budget_ms`` per
        # request — warm replays and store hits still answer completely,
        # everything else degrades into a partial (aborted) report that
        # is honestly marked and never cached.
        browned = False
        if self.brownout is not None and self.brownout.active:
            job.budget, browned = tighten(
                job.budget, self.config.brownout_budget()
            )
        try:
            # A job whose budget died in the queue never touches a session.
            job.deadline.check()
            path, source, engine, options = self._check_params(job.params)
            if source is None:
                try:
                    with open(path) as handle:
                        source = handle.read()
                except OSError as error:
                    finish("ok")  # served, with a well-formed failure report
                    return self._check_response(
                        job,
                        CheckOutcome(
                            report={
                                "file": path,
                                "ok": False,
                                "error": "IOError",
                                "message": str(error),
                            },
                            exit=EXIT_USAGE,
                        ),
                        cached=False,
                    )
            entry = self.registry.acquire(path, engine, options)
            with entry.lock:
                fingerprint = fingerprint_source(source)
                label = self.registry.classify_request(entry, fingerprint)
                self.registry.record(label)
                if label == "hit":
                    outcome, cached = entry.outcome, True
                    aborted = False
                else:
                    outcome = check_source(
                        path,
                        source,
                        engine=engine,
                        options=options,
                        session=entry.session,
                        recheck=entry.checks > 0,
                        deadline=job.deadline,
                        budget=job.budget,
                        deep=False,
                        store=self.store,
                    )
                    entry.checks += 1
                    aborted = report_aborted(outcome.report)
                    if not aborted:
                        # A partial (budget-starved) report is never a
                        # replay outcome: the next request must re-run
                        # the aborted declarations, not replay the gap.
                        entry.fingerprint = fingerprint
                        entry.outcome = outcome
                    self.metrics.merge_solver_stats(outcome.solver_stats)
                    self.metrics.record_diagnostics(
                        diagnostic_codes(outcome.report)
                    )
                    cached = False
        except _InvalidParams as error:
            finish("invalid")
            return protocol.error_response(
                job.id, protocol.INVALID_PARAMS, str(error)
            )
        except Cancelled:
            finish("cancelled")
            return protocol.error_response(
                job.id,
                protocol.CANCELLED,
                "request cancelled by client",
                {"path": job.params.get("path")},
            )
        except DeadlineExceeded:
            finish("timeout")
            return protocol.error_response(
                job.id,
                protocol.DEADLINE_EXCEEDED,
                "request deadline exceeded",
                {
                    "path": job.params.get("path"),
                    "deadline_ms": job.params.get(
                        "deadline_ms", self.config.deadline_ms
                    ),
                },
            )
        except BudgetExceeded as error:
            # Backstop: the session normally converts budget trips into
            # per-declaration aborts; one escaping to here (e.g. injected
            # directly into serving code) is still answered structurally.
            finish("aborted")
            self.metrics.record_robustness("budget_exceeded")
            if self.quarantine is not None and quarantine_key is not None:
                self.quarantine.record_failure(quarantine_key)
            return protocol.error_response(
                job.id,
                protocol.RESOURCE_LIMIT,
                f"resource budget exhausted: {error}",
                {
                    "rp": diag_codes.RESOURCE_LIMIT,
                    "path": job.params.get("path"),
                },
            )
        except Exception as error:  # noqa: BLE001 — answered, not fatal
            finish("error")
            if self.quarantine is not None and quarantine_key is not None:
                # Internal errors (not type errors!) count as strikes: a
                # module that keeps blowing up the engine gets benched.
                self.quarantine.record_failure(quarantine_key)
            return protocol.error_response(
                job.id,
                protocol.INTERNAL_ERROR,
                f"{type(error).__name__}: {error}",
            )
        # Degraded ⇔ the brownout cap made this answer partial.  A
        # complete answer under brownout (replay/store hit, or simply
        # cheap) is not degraded — it is byte-identical to offline — and
        # a partial answer the *caller's own* budget caused is plain
        # ``aborted``.  Degraded responses inherit the aborted
        # discipline: never a replay outcome, never persisted.
        degraded = browned and aborted
        if degraded:
            self.metrics.record_overload_event("degraded_served")
        if aborted:
            finish("aborted")
            self.metrics.record_robustness("budget_exceeded")
            if self.quarantine is not None and quarantine_key is not None:
                # A brownout abort is the daemon's doing, not the
                # module's: it must not strike the session toward
                # quarantine.
                if not degraded:
                    self.quarantine.record_failure(quarantine_key)
        else:
            finish("ok")
            if self.quarantine is not None and quarantine_key is not None:
                self.quarantine.record_success(quarantine_key)
        return self._check_response(job, outcome, cached, aborted, degraded)

    @staticmethod
    def _check_response(
        job: Job,
        outcome: CheckOutcome,
        cached: bool,
        aborted: bool = False,
        degraded: bool = False,
    ) -> dict[str, Any]:
        result: dict[str, Any] = {
            "report": outcome.report,
            "exit": outcome.exit,
            "trace": outcome.trace,
            "cached": cached,
        }
        if outcome.config_digest:
            # The producing configuration (store-key digest); response
            # metadata like trace/cached, not part of the stable report.
            result["config_digest"] = outcome.config_digest
        if aborted:
            result["aborted"] = True
        if degraded:
            # Honest labelling: this answer is partial *because of
            # brownout*, not because of anything the caller asked for.
            result["degraded"] = True
        return protocol.ok_response(job.id, result)

    # ------------------------------------------------------------------
    # transports
    # ------------------------------------------------------------------
    def serve_stdio(self, stdin=None, stdout=None) -> None:
        """Serve newline-delimited JSON-RPC on stdio until EOF/shutdown."""
        import sys

        stdin = stdin if stdin is not None else sys.stdin
        stdout = stdout if stdout is not None else sys.stdout
        self.scheduler.start()
        self.supervisor.start()
        write_lock = threading.Lock()

        def respond(message: dict[str, Any]) -> None:
            data = protocol.encode(message)
            with write_lock:
                stdout.write(data)
                stdout.flush()

        for line, frame_error in protocol.iter_frames(stdin):
            if frame_error is not None:
                self.reject_frame(frame_error, respond)
            else:
                self.handle_line(line, respond, client="stdio")
            if self.shutdown_requested.is_set():
                break
        self._drain()

    def serve_tcp(
        self, host: str = "127.0.0.1", port: int = 0, background: bool = False
    ) -> tuple[str, int]:
        """Serve over TCP; returns the bound (host, port).

        ``background=True`` runs the accept loop on a thread (tests and
        benchmarks); otherwise this blocks until shutdown.
        """
        daemon = self

        class _Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:
                write_lock = threading.Lock()
                client_tag = object()  # namespaces request ids per connection

                def respond(message: dict[str, Any]) -> None:
                    data = protocol.encode(message).encode()
                    with write_lock:
                        self.wfile.write(data)
                        self.wfile.flush()

                for line, frame_error in protocol.iter_frames(self.rfile):
                    if frame_error is not None:
                        daemon.reject_frame(frame_error, respond)
                    else:
                        daemon.handle_line(line, respond, client_tag)
                    if daemon.shutdown_requested.is_set():
                        break

        class _Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self.scheduler.start()
        self.supervisor.start()
        server = _Server((host, port), _Handler)
        self._tcp_server = server
        bound = server.server_address[:2]
        if background:
            thread = threading.Thread(
                target=server.serve_forever,
                name="rowpoly-acceptor",
                daemon=True,
            )
            thread.start()
        else:
            try:
                server.serve_forever()
            finally:
                server.server_close()
        return bound

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def request_shutdown(self) -> None:
        """Begin a graceful shutdown without blocking the caller.

        Safe from RPC dispatch, signal handlers and tests alike; the
        actual drain runs on its own thread and is done exactly once.
        """
        with self._shutdown_lock:
            if self.shutdown_requested.is_set():
                return
            self.shutdown_requested.set()
        threading.Thread(
            target=self._drain, name="rowpoly-drain", daemon=False
        ).start()

    def _drain(self) -> None:
        with self._shutdown_lock:
            if self.drained.is_set():
                return
            self.shutdown_requested.set()
            self.supervisor.stop(timeout=1.0)
            clean = self.scheduler.drain(timeout=self.config.drain_timeout)
            if self.brownout is not None:
                # Close the books on an in-progress brownout spell so
                # the final metrics dump accounts every degraded second.
                leftover = self.brownout.flush()
                if leftover:
                    self.metrics.record_overload_event(
                        "brownout_seconds", leftover
                    )
            server, self._tcp_server = self._tcp_server, None
            if server is not None:
                server.shutdown()
                server.server_close()
            self.drained.set()
        if not clean:  # pragma: no cover - only on a wedged worker
            import sys

            print(
                "rowpoly serve: drain timed out with requests in flight",
                file=sys.stderr,
            )

    def wait_drained(self, timeout: Optional[float] = None) -> bool:
        return self.drained.wait(timeout)
