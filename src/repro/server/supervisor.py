"""Worker supervision, crash recovery and session quarantine.

The scheduler's workers are ordinary threads; a bug (or an injected
fault) can kill one.  Three mechanisms keep the daemon serving through
that:

* :class:`WorkerCrash` — the "this worker is compromised" signal.  A
  worker that catches it answers the in-flight request with a retryable
  503-class error and then *lets itself die* rather than reusing a
  possibly-corrupt thread state; deriving from :class:`BaseException`
  keeps blanket ``except Exception`` recovery code from swallowing it.

* :class:`WorkerSupervisor` — a monitor thread that respawns dead
  workers with exponential backoff (so a crash-looping fault cannot
  busy-spin the process) and runs a hang watchdog: a job running longer
  than ``hang_seconds`` has its deadline cooperatively cancelled, which
  the inference notices at its next poll.  Restarts are counted in the
  metrics' ``worker_restarts``.

  The supervisor is deliberately generic over *what a worker is*: it
  talks to a **pool** through four members — ``draining``,
  ``dead_workers()``, ``respawn(index)`` and ``active_jobs()`` — plus an
  optional ``on_hang(job)`` hook.  The thread :class:`Scheduler` is one
  such pool (workers are threads; a hang is answered by cancelling the
  job's deadline); the sharded router's process pool is another (workers
  are whole shard processes; a hang is answered by killing the wedged
  process so a clean replacement can be spawned).  Same monitor, same
  jittered backoff, two blast radii.

* :class:`SessionQuarantine` — per-session-key failure counters.  A
  session whose requests repeatedly crash workers or trip budgets is
  quarantined for a TTL: requests for it are answered immediately with a
  retryable error carrying ``retry_after_ms`` instead of burning another
  worker.  One trip is never enough (``threshold`` defaults to 3), so a
  single expensive-but-honest module is not a false positive; a success
  clears the strikes, and the TTL expiring resets the key to a clean
  slate.

Everything here is cooperative and in-process: no signals, no subprocess
churn — the same trade the rest of the serving stack makes.
"""

from __future__ import annotations

import threading
import time
from random import Random
from typing import Optional

from .metrics import ServerMetrics


class WorkerCrash(BaseException):
    """A worker thread is compromised and must be replaced.

    Raised by fault injection (and available to genuinely unrecoverable
    paths).  Derives from :class:`BaseException` so the scheduler's
    ``except Exception`` answer-and-continue arm does not catch it: the
    worker answers the request as retryable, then dies, and the
    supervisor respawns a replacement.
    """


def backoff_delay(
    attempt: int,
    base: float = 0.05,
    cap: float = 2.0,
    rng: Optional[Random] = None,
) -> float:
    """Exponential backoff with optional jitter: ``base * 2^(attempt-1)``.

    ``attempt`` is 1-based.  With ``rng`` the delay is scaled by a factor
    in [0.5, 1.5) — seeded by callers that need reproducible schedules.
    """
    delay = min(cap, base * (2.0 ** max(0, attempt - 1)))
    if rng is not None:
        delay *= 0.5 + rng.random()
    return delay


class SessionQuarantine:
    """Strike-based quarantine of misbehaving session keys.

    A *strike* is a request that crashed a worker, tripped a resource
    budget, or died of an internal error — never a genuine type error
    (an ill-typed module is a correct, cheap answer, not misbehaviour).
    """

    def __init__(
        self,
        threshold: int = 3,
        ttl: float = 30.0,
        metrics: Optional[ServerMetrics] = None,
    ) -> None:
        if threshold < 1:
            raise ValueError("quarantine threshold must be >= 1")
        self.threshold = threshold
        self.ttl = ttl
        self.metrics = metrics
        self._lock = threading.Lock()
        self._strikes: dict[tuple, int] = {}
        self._until: dict[tuple, float] = {}

    def record_failure(self, key: tuple) -> bool:
        """Count one strike; returns ``True`` when this one quarantines."""
        with self._lock:
            strikes = self._strikes.get(key, 0) + 1
            self._strikes[key] = strikes
            if strikes < self.threshold or key in self._until:
                return False
            self._until[key] = time.monotonic() + self.ttl
        if self.metrics is not None:
            self.metrics.record_robustness("quarantined_sessions")
        return True

    def record_success(self, key: tuple) -> None:
        """A served request wipes the key's strikes (and any quarantine)."""
        with self._lock:
            self._strikes.pop(key, None)
            self._until.pop(key, None)

    def blocked(self, key: tuple) -> Optional[float]:
        """Seconds of quarantine remaining, or ``None`` when serveable.

        An expired quarantine unblocks *and* resets the key's strikes:
        the session gets a full fresh allowance, not an instant re-trip.
        """
        with self._lock:
            until = self._until.get(key)
            if until is None:
                return None
            remaining = until - time.monotonic()
            if remaining <= 0:
                self._until.pop(key, None)
                self._strikes.pop(key, None)
                return None
            return remaining

    def quarantined(self) -> int:
        """Currently quarantined key count (expired keys excluded)."""
        now = time.monotonic()
        with self._lock:
            return sum(1 for until in self._until.values() if until > now)


class WorkerSupervisor:
    """Monitor thread: respawn dead workers, handle hung jobs.

    Talks to its pool through ``dead_workers()``, ``respawn(index)`` and
    ``active_jobs()`` — so it needs no knowledge of queues, transports,
    or whether a "worker" is a thread or a whole shard process.  A pool
    that defines ``on_hang(job)`` owns its hang response (and its
    accounting); otherwise the default cooperative response cancels the
    job's deadline.  ``restart_counter`` names the robustness metric a
    respawn bumps (``worker_restarts`` for threads, ``shard_restarts``
    for the router's process pool).
    """

    def __init__(
        self,
        pool,
        metrics: Optional[ServerMetrics] = None,
        poll_interval: float = 0.05,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        hang_seconds: Optional[float] = None,
        seed: int = 0,
        restart_counter: str = "worker_restarts",
    ) -> None:
        self.pool = pool
        self.metrics = metrics
        self.restart_counter = restart_counter
        self.poll_interval = poll_interval
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.hang_seconds = hang_seconds
        self._rng = Random(seed)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: worker index -> consecutive restarts (cleared implicitly when
        #: the replacement outlives the next poll with work to do).
        self._restarts: dict[int, int] = {}
        #: worker index -> monotonic time before which not to respawn.
        self._hold_until: dict[int, float] = {}
        self.restarts_total = 0

    @property
    def scheduler(self):
        """Backwards-compatible alias: the pool of a thread supervisor."""
        return self.pool

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, name="rowpoly-supervisor", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: Optional[float] = None) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout)

    # -- the monitor loop ----------------------------------------------
    def _loop(self) -> None:
        while not self._stop.wait(self.poll_interval):
            try:
                self._respawn_dead()
                self._watch_hangs()
            except Exception:  # pragma: no cover - monitor must survive
                continue

    def _respawn_dead(self) -> None:
        if self.pool.draining:
            return
        now = time.monotonic()
        for index in self.pool.dead_workers():
            if now < self._hold_until.get(index, 0.0):
                continue
            attempt = self._restarts.get(index, 0) + 1
            self._restarts[index] = attempt
            self.pool.respawn(index)
            self.restarts_total += 1
            if self.metrics is not None:
                self.metrics.record_robustness(self.restart_counter)
            self._hold_until[index] = now + backoff_delay(
                attempt, self.backoff_base, self.backoff_cap, self._rng
            )

    def _watch_hangs(self) -> None:
        if self.hang_seconds is None:
            return
        now = time.monotonic()
        on_hang = getattr(self.pool, "on_hang", None)
        for job, started_at in self.pool.active_jobs():
            if now - started_at > self.hang_seconds:
                if on_hang is not None:
                    # The pool owns the response (and the accounting) —
                    # the router kills the wedged shard process here.
                    on_hang(job)
                    continue
                # Cooperative: the inference notices at its next poll and
                # the request is answered as cancelled — the worker
                # survives (unlike a crash) because its state is fine,
                # it was merely stuck in a long solver call.
                job.deadline.cancel()
                if self.metrics is not None:
                    self.metrics.record_robustness("hung_jobs_cancelled")
