"""Newline-delimited JSON-RPC framing for the inference daemon.

One request or response per line, UTF-8, compact JSON with sorted keys (so
transcripts are byte-stable and diffable).  The shape follows JSON-RPC 2.0
closely enough to be unsurprising without pulling in a dependency:

* request:  ``{"id": 7, "method": "check", "params": {...}}``
* success:  ``{"id": 7, "result": {...}}``
* failure:  ``{"id": 7, "error": {"code": 408, "message": ..., "data": ...}}``

Standard JSON-RPC codes cover malformed traffic; the application codes are
HTTP-flavoured on purpose — a deadline miss is a 408, backpressure is a
429, a drain rejection is a 503 — because that is the vocabulary the
serving layer's operators already speak.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

# -- JSON-RPC framing errors ------------------------------------------------
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603

# -- application errors (HTTP-flavoured) ------------------------------------
DEADLINE_EXCEEDED = 408
OVERLOADED = 429
CANCELLED = 499
SHUTTING_DOWN = 503

#: Human labels for the error codes (carried in responses for greppability).
ERROR_NAMES = {
    PARSE_ERROR: "parse-error",
    INVALID_REQUEST: "invalid-request",
    METHOD_NOT_FOUND: "method-not-found",
    INVALID_PARAMS: "invalid-params",
    INTERNAL_ERROR: "internal-error",
    DEADLINE_EXCEEDED: "deadline-exceeded",
    OVERLOADED: "overloaded",
    CANCELLED: "cancelled",
    SHUTTING_DOWN: "shutting-down",
}


class ProtocolError(Exception):
    """A request that cannot be dispatched; carries its error code."""

    def __init__(self, code: int, message: str,
                 request_id: object = None) -> None:
        super().__init__(message)
        self.code = code
        self.request_id = request_id


@dataclass
class Request:
    """One decoded request line."""

    id: object
    method: str
    params: dict[str, Any] = field(default_factory=dict)


def parse_request(line: str) -> Request:
    """Decode one request line; raise :class:`ProtocolError` on junk."""
    try:
        payload = json.loads(line)
    except ValueError as error:
        raise ProtocolError(PARSE_ERROR, f"malformed JSON: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError(INVALID_REQUEST, "request must be a JSON object")
    request_id = payload.get("id")
    method = payload.get("method")
    if not isinstance(method, str) or not method:
        raise ProtocolError(
            INVALID_REQUEST, "request needs a string 'method'", request_id
        )
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(
            INVALID_PARAMS, "'params' must be a JSON object", request_id
        )
    return Request(id=request_id, method=method, params=params)


def ok_response(request_id: object, result: Any) -> dict[str, Any]:
    return {"id": request_id, "result": result}


def error_response(
    request_id: object,
    code: int,
    message: str,
    data: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    error: dict[str, Any] = {
        "code": code,
        "name": ERROR_NAMES.get(code, "error"),
        "message": message,
    }
    if data:
        error["data"] = data
    return {"id": request_id, "error": error}


def encode(message: dict[str, Any]) -> str:
    """One wire line (terminator included), byte-stable for equal inputs."""
    return json.dumps(message, separators=(",", ":"), sort_keys=True) + "\n"
