"""Newline-delimited JSON-RPC framing for the inference daemon.

One request or response per line, UTF-8, compact JSON with sorted keys (so
transcripts are byte-stable and diffable).  The shape follows JSON-RPC 2.0
closely enough to be unsurprising without pulling in a dependency:

* request:  ``{"id": 7, "method": "check", "params": {...}}``
* success:  ``{"id": 7, "result": {...}}``
* failure:  ``{"id": 7, "error": {"code": 408, "message": ..., "data": ...}}``

Standard JSON-RPC codes cover malformed traffic; the application codes are
HTTP-flavoured on purpose — a deadline miss is a 408, backpressure is a
429, a drain rejection is a 503 — because that is the vocabulary the
serving layer's operators already speak.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

# -- JSON-RPC framing errors ------------------------------------------------
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603

# -- application errors (HTTP-flavoured) ------------------------------------
DEADLINE_EXCEEDED = 408
FRAME_TOO_LARGE = 413
QUARANTINED = 423
OVERLOADED = 429
CANCELLED = 499
WORKER_CRASHED = 502
SHUTTING_DOWN = 503
RESOURCE_LIMIT = 507

#: Codes a client may retry on (after the backoff the ``data`` suggests).
#: Everything here says "the daemon could not serve you *right now*" —
#: nothing about the request itself being wrong.
RETRYABLE_CODES = frozenset(
    {QUARANTINED, OVERLOADED, WORKER_CRASHED, SHUTTING_DOWN}
)

#: Human labels for the error codes (carried in responses for greppability).
ERROR_NAMES = {
    PARSE_ERROR: "parse-error",
    INVALID_REQUEST: "invalid-request",
    METHOD_NOT_FOUND: "method-not-found",
    INVALID_PARAMS: "invalid-params",
    INTERNAL_ERROR: "internal-error",
    DEADLINE_EXCEEDED: "deadline-exceeded",
    FRAME_TOO_LARGE: "frame-too-large",
    QUARANTINED: "quarantined",
    OVERLOADED: "overloaded",
    CANCELLED: "cancelled",
    WORKER_CRASHED: "worker-crashed",
    SHUTTING_DOWN: "shutting-down",
    RESOURCE_LIMIT: "resource-limit",
}

#: Hard ceiling on one frame (request line), terminator included.  A
#: frame over the limit is rejected with :data:`FRAME_TOO_LARGE` and
#: drained — the connection survives, the oversized request does not.
MAX_FRAME_BYTES = 1 << 20


class ProtocolError(Exception):
    """A request that cannot be dispatched; carries its error code."""

    def __init__(self, code: int, message: str,
                 request_id: object = None) -> None:
        super().__init__(message)
        self.code = code
        self.request_id = request_id


@dataclass
class Request:
    """One decoded request line."""

    id: object
    method: str
    params: dict[str, Any] = field(default_factory=dict)


def parse_request(line: str) -> Request:
    """Decode one request line; raise :class:`ProtocolError` on junk."""
    try:
        payload = json.loads(line)
    except ValueError as error:
        raise ProtocolError(PARSE_ERROR, f"malformed JSON: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError(INVALID_REQUEST, "request must be a JSON object")
    request_id = payload.get("id")
    method = payload.get("method")
    if not isinstance(method, str) or not method:
        raise ProtocolError(
            INVALID_REQUEST, "request needs a string 'method'", request_id
        )
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(
            INVALID_PARAMS, "'params' must be a JSON object", request_id
        )
    return Request(id=request_id, method=method, params=params)


def iter_frames(
    stream, max_bytes: int = MAX_FRAME_BYTES
) -> Iterator[tuple[Optional[str], Optional[ProtocolError]]]:
    """Newline-delimited frames from a text or binary stream, bounded.

    Yields ``(line, None)`` for each in-limit frame and ``(None, error)``
    for an oversized one — the offending bytes are drained up to the next
    newline, so one abusive frame costs one error response, not the
    connection.  Garbage *content* is not judged here; that is
    :func:`parse_request`'s job.
    """
    while True:
        chunk = stream.readline(max_bytes + 1)
        if not chunk:
            return
        if isinstance(chunk, bytes):
            line = chunk.decode("utf-8", "replace")
        else:
            line = chunk
        if len(chunk) > max_bytes:
            # Over the limit either way; a chunk that already ends in
            # the terminator (exactly limit+1 bytes) needs no draining.
            drained = len(chunk)
            if not line.endswith("\n"):
                while True:
                    rest = stream.readline(max_bytes + 1)
                    if not rest:
                        break
                    drained += len(rest)
                    tail = (
                        rest.decode("utf-8", "replace")
                        if isinstance(rest, bytes)
                        else rest
                    )
                    if tail.endswith("\n"):
                        break
            yield None, ProtocolError(
                FRAME_TOO_LARGE,
                f"frame exceeds {max_bytes} bytes "
                f"({drained}+ bytes dropped)",
            )
            continue
        yield line, None


def ok_response(request_id: object, result: Any) -> dict[str, Any]:
    return {"id": request_id, "result": result}


def error_response(
    request_id: object,
    code: int,
    message: str,
    data: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    error: dict[str, Any] = {
        "code": code,
        "name": ERROR_NAMES.get(code, "error"),
        "message": message,
    }
    if data:
        error["data"] = data
    return {"id": request_id, "error": error}


def encode(message: dict[str, Any]) -> str:
    """One wire line (terminator included), byte-stable for equal inputs."""
    return json.dumps(message, separators=(",", ":"), sort_keys=True) + "\n"
