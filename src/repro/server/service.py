"""The canonical "check one module source" routine.

``rowpoly check`` (offline, possibly ``--jobs N``) and the serving daemon
must produce *byte-identical* stable reports for the same source — the
parity requirement that keeps the warm path honest.  Both therefore call
:func:`check_source`; neither re-implements the parse/report/exit-code
logic.

The stable ``report`` dict never contains timings or cache provenance.
Parse and lex failures carry structured ``line``/``column`` fields
whenever the offending token's span is known (I/O failures have no span
and carry none).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Optional

from ..boolfn.engine import SolverStats
from ..diag import Diagnostic, codes, diagnostics_as_dicts
from ..diag.diagnostic import Pos
from ..infer import InferSession
from ..infer.state import FlowOptions
from ..lang import LexError, ParseError, parse_module
from ..store.backend import CacheBackend
from ..store.keys import config_digest, module_key
from ..util import Budget, Deadline, run_deep

EXIT_OK = 0
EXIT_ILL_TYPED = 1
EXIT_USAGE = 2
#: At least one declaration was aborted by a resource budget (RP0998) and
#: none actually failed: the report is partial, not a verdict.
EXIT_ABORTED = 3


@dataclass
class CheckOutcome:
    """Everything one module check produced.

    ``report`` is the stable (deterministic, timing-free) JSON payload;
    ``trace`` and ``solver_stats`` are the non-stable companions.
    """

    report: dict[str, object]
    exit: int
    trace: dict[str, float] = field(default_factory=dict)
    solver_stats: Optional[SolverStats] = None
    fingerprint: str = ""
    #: The engine+options digest store keys use
    #: (:func:`repro.store.keys.config_digest`) — the producing
    #: configuration, recorded on audit findings.  Deliberately *not*
    #: part of the stable report: reports predate the store and their
    #: bytes are pinned by golden tests and cross-mode parity checks.
    config_digest: str = ""


def fingerprint_source(source: str) -> str:
    """Content hash used for warm-session invalidation and replay hits."""
    return hashlib.sha256(source.encode()).hexdigest()[:24]


def _failure_report(
    path: str, error: Exception, span=None
) -> dict[str, object]:
    code = codes.LEX if isinstance(error, LexError) else codes.PARSE
    report: dict[str, object] = {
        "file": path,
        "ok": False,
        "error": type(error).__name__,
        "message": str(error),
        "code": code,
    }
    if span is not None:
        report["line"] = span.line
        report["column"] = span.column
    report["diagnostics"] = diagnostics_as_dicts(
        (
            Diagnostic(
                code=code,
                message=str(error),
                pos=Pos.from_span(span),
            ),
        )
    )
    return report


def diagnostic_codes(report: dict[str, object]) -> list[str]:
    """All ``RP####`` codes in a stable report, one per diagnostic.

    Works on both shapes: file-level failures (parse/lex/IO) carry
    ``code`` at the top, module reports carry one per failing
    declaration.  The daemon's per-code metrics counters consume this.
    """
    found: list[str] = []
    top = report.get("code")
    if isinstance(top, str) and top:
        found.append(top)
    decls = report.get("decls")
    if isinstance(decls, list):
        for decl in decls:
            code = decl.get("code") if isinstance(decl, dict) else None
            if isinstance(code, str) and code:
                found.append(code)
    return found


def report_aborted(report: dict[str, object]) -> bool:
    """Whether a stable report is *partial*: any declaration aborted."""
    decls = report.get("decls")
    if not isinstance(decls, list):
        return False
    return any(
        isinstance(decl, dict) and decl.get("status") == "aborted"
        for decl in decls
    )


def _outcome_from_module_payload(
    path: str, payload: Optional[dict], fingerprint: str, digest: str
) -> Optional[CheckOutcome]:
    """A served outcome from a module-level store payload, or ``None``.

    The payload stores the report *without* its ``file`` field (paths
    are not part of store keys); reattaching it first keeps the stable
    JSON key order — and therefore the bytes — identical to a freshly
    computed report.
    """
    if not isinstance(payload, dict):
        return None
    body = payload.get("report")
    exit_code = payload.get("exit")
    if (
        not isinstance(body, dict)
        or not isinstance(exit_code, int)
        or not isinstance(body.get("decls"), list)
    ):
        return None
    report: dict[str, object] = {"file": path}
    report.update(body)
    return CheckOutcome(
        report=report,
        exit=exit_code,
        fingerprint=fingerprint,
        config_digest=digest,
    )


def check_source(
    path: str,
    source: str,
    *,
    engine: str = "flow",
    options: Optional[FlowOptions] = None,
    session: Optional[InferSession] = None,
    recheck: bool = False,
    deadline: Optional[Deadline] = None,
    budget: Optional[Budget] = None,
    deep: bool = True,
    store: Optional[CacheBackend] = None,
) -> CheckOutcome:
    """Check one module source and package the outcome.

    ``session=None`` checks in a fresh throwaway session (the offline
    path); a provided session is used warm (the daemon path), with
    ``recheck=True`` routing through :meth:`InferSession.recheck` so the
    session's counters tell check and re-check traffic apart.

    ``deep=True`` runs parse and inference on a deep-stack thread
    (:func:`repro.util.run_deep`) — required for the right-nested Fig. 9
    corpora.  The daemon's workers are already deep-stack threads and pass
    ``deep=False``.

    :class:`~repro.util.DeadlineExceeded`/:class:`~repro.util.Cancelled`
    propagate to the caller: a timeout is not a verdict about the module
    and must never be folded into the report.

    ``budget`` is the graceful resource governor: exhaustion mid-check
    yields a *partial* report (aborted declarations carry ``RP0998``)
    and, when nothing genuinely failed, exit :data:`EXIT_ABORTED`.

    ``store`` is the persistent result store.  It is consulted at
    *module* granularity before even parsing — a content hit serves the
    stored report with zero solver (or parser) work, the restart-parity
    fast path — and complete, non-aborted reports are written back.
    When a fresh throwaway session is created it also gets the store,
    so partially changed modules reuse per-declaration entries.
    """
    run = run_deep if deep else (lambda fn: fn())
    fingerprint = fingerprint_source(source)
    digest = config_digest(engine, options)
    store_key = ""
    if store is not None:
        store_key = module_key(fingerprint, digest)
        cached = _outcome_from_module_payload(
            path, store.get(store_key), fingerprint, digest
        )
        if cached is not None:
            return cached
    started = time.perf_counter()
    parse_started = time.perf_counter()
    try:
        module = run(lambda: parse_module(source))
    except (ParseError, LexError) as error:
        return CheckOutcome(
            report=_failure_report(path, error, getattr(error, "span", None)),
            exit=EXIT_USAGE,
            fingerprint=fingerprint,
            config_digest=digest,
        )
    parse_seconds = time.perf_counter() - parse_started
    if session is None:
        session = InferSession(engine, options, store=store)
    if recheck:
        result = run(lambda: session.recheck(module, deadline, budget))
    else:
        result = run(lambda: session.check(module, deadline, budget))
    report: dict[str, object] = {"file": path}
    report.update(result.as_dict())
    trace = {"parse": parse_seconds, "total": time.perf_counter() - started}
    trace.update(result.trace_spans())
    statuses = {decl.status for decl in result.decls}
    if result.ok:
        exit_code = EXIT_OK
    elif statuses <= {"ok", "aborted", "dependency-error"} and (
        "aborted" in statuses
    ):
        # Only aborts (and their dependency shadows): nothing is known to
        # be ill-typed, the report is merely partial.
        exit_code = EXIT_ABORTED
    else:
        exit_code = EXIT_ILL_TYPED
    if (
        store is not None
        and "aborted" not in statuses
        and exit_code in (EXIT_OK, EXIT_ILL_TYPED)
    ):
        # Complete verdicts only: partial (aborted) reports are not
        # cacheable, and parse failures never reach this point.
        store.put(
            store_key,
            {
                "report": {
                    k: v for k, v in report.items() if k != "file"
                },
                "exit": exit_code,
            },
        )
    return CheckOutcome(
        report=report,
        exit=exit_code,
        trace=trace,
        solver_stats=result.solver_rollup(),
        fingerprint=fingerprint,
        config_digest=digest,
    )
