"""The serving layer: a persistent inference daemon (``rowpoly serve``).

Every ``rowpoly check`` process rebuilds the world — supplies, builtins,
sessions, solver state — only to throw it away.  The paper's design (one
persistent β with per-declaration clause intervals, incremental
satisfiability, signature-keyed caches) pays off precisely when that state
stays *warm across requests*, which is how editor tooling actually drives
a type checker.  This package keeps it warm:

* :mod:`protocol`  — newline-delimited JSON-RPC framing and error codes,
* :mod:`service`   — the canonical "check one module source" routine
  shared by the offline batch checker and the daemon (parity by
  construction),
* :mod:`registry`  — an LRU-bounded pool of warm
  :class:`~repro.infer.session.InferSession` objects keyed by module
  path, invalidated by source fingerprint,
* :mod:`scheduler` — a worker pool with a bounded queue, per-request
  deadlines, client cancellation, backpressure and graceful drain,
* :mod:`metrics`   — counters, latency histograms and
  :class:`~repro.boolfn.engine.SolverStats` rollups, served by the
  ``stats`` RPC and dumped on shutdown,
* :mod:`daemon`    — the long-lived process tying it together (stdio and
  TCP transports),
* :mod:`routing`   — deterministic rendezvous hashing of warm-session
  keys onto shards (the affinity contract, as a pure function),
* :mod:`shard`     — one daemon running as a spawned worker process,
* :mod:`router`    — the front process of ``rowpoly serve --shards N``:
  consistent-hash session affinity over N shard processes, raw-line
  passthrough (byte parity by construction), fleet-aggregated ``stats``,
  shard respawn via the same :class:`WorkerSupervisor`,
* :mod:`client`    — the thin client behind ``rowpoly client`` and
  ``rowpoly check --server ADDR``.
"""

from .client import ServeClient, check_files_via_server
from .daemon import Daemon, DaemonConfig
from .metrics import ServerMetrics, aggregate_snapshots
from .registry import SessionRegistry
from .router import Router, RouterConfig
from .routing import routing_key, shard_for
from .scheduler import Scheduler
from .service import CheckOutcome, check_source, fingerprint_source

__all__ = [
    "CheckOutcome",
    "Daemon",
    "DaemonConfig",
    "Router",
    "RouterConfig",
    "Scheduler",
    "ServeClient",
    "ServerMetrics",
    "SessionRegistry",
    "aggregate_snapshots",
    "check_files_via_server",
    "check_source",
    "fingerprint_source",
    "routing_key",
    "shard_for",
]
