"""The daemon's metrics subsystem.

Three kinds of instruments, all behind one lock (contention is negligible
next to an inference request):

* **counters** — requests by method and outcome status, session-registry
  traffic (hits/misses/evictions/invalidations), totals;
* **latency histograms** — per method, split into *queue* time (submit →
  worker pickup; the backpressure signal) and *service* time (worker
  pickup → response).  Buckets are geometric from 100µs to ~2 minutes, so
  p50/p90/p99 come out of bucket interpolation with bounded error and the
  snapshot stays a few hundred bytes;
* **solver rollup** — one :class:`~repro.boolfn.engine.SolverStats` that
  every completed check's per-declaration telemetry is merged into
  (:meth:`SolverStats.merge`), the daemon-lifetime analogue of
  ``rowpoly check --solver-stats``.

:meth:`ServerMetrics.snapshot` is the payload of the ``stats`` RPC;
:meth:`ServerMetrics.render_text` is what the daemon dumps on SIGTERM.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from ..boolfn.engine import SolverStats

#: Geometric latency bucket upper bounds, in seconds (last bucket open).
_BUCKET_BOUNDS: tuple[float, ...] = tuple(
    0.0001 * (2.0 ** i) for i in range(21)
)


class Histogram:
    """A fixed-bucket latency histogram with interpolated percentiles."""

    __slots__ = ("counts", "count", "total", "max")

    def __init__(self) -> None:
        self.counts = [0] * (len(_BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        index = 0
        while index < len(_BUCKET_BOUNDS) and seconds > _BUCKET_BOUNDS[index]:
            index += 1
        self.counts[index] += 1
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    def percentile(self, q: float) -> float:
        """The q-th percentile (0 < q < 1), linearly interpolated."""
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= rank:
                lower = _BUCKET_BOUNDS[index - 1] if index > 0 else 0.0
                upper = (
                    _BUCKET_BOUNDS[index]
                    if index < len(_BUCKET_BOUNDS)
                    else self.max
                )
                fraction = (rank - seen) / bucket_count
                return lower + (upper - lower) * fraction
            seen += bucket_count
        return self.max

    def snapshot(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.total / self.count if self.count else 0.0,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "max": self.max,
        }


class ServerMetrics:
    """All of the daemon's observable state, thread-safe."""

    #: Request outcome statuses the counters are keyed by.  ``aborted``
    #: is a resource-budget trip (partial report served), ``crashed`` a
    #: worker death mid-request, ``quarantined`` a refusal without
    #: touching the session.
    STATUSES = (
        "ok", "error", "timeout", "cancelled", "rejected", "invalid",
        "aborted", "crashed", "quarantined",
    )

    #: Robustness event counters (the fault-tolerance subsystem's pulse).
    ROBUSTNESS_COUNTERS = (
        "budget_exceeded",
        "worker_restarts",
        "quarantined_sessions",
        "client_retries",
        "hung_jobs_cancelled",
        "frames_rejected",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._requests: dict[str, dict[str, int]] = {}
        self._queue_latency: dict[str, Histogram] = {}
        self._service_latency: dict[str, Histogram] = {}
        self._sessions = {
            "hits": 0, "misses": 0, "evictions": 0, "invalidations": 0,
        }
        self._solver = SolverStats()
        self._solver_merges = 0
        self._diagnostics: dict[str, int] = {}
        self._robustness = {name: 0 for name in self.ROBUSTNESS_COUNTERS}

    # -- recording -----------------------------------------------------
    def record_request(
        self,
        method: str,
        status: str,
        queue_seconds: float = 0.0,
        service_seconds: float = 0.0,
    ) -> None:
        with self._lock:
            per_status = self._requests.setdefault(
                method, {s: 0 for s in self.STATUSES}
            )
            per_status[status] = per_status.get(status, 0) + 1
            if queue_seconds:
                self._queue_latency.setdefault(
                    method, Histogram()
                ).observe(queue_seconds)
            if status != "rejected":
                self._service_latency.setdefault(
                    method, Histogram()
                ).observe(service_seconds)

    def record_session_event(self, event: str, count: int = 1) -> None:
        """``event`` ∈ {hits, misses, evictions, invalidations}."""
        with self._lock:
            self._sessions[event] = self._sessions.get(event, 0) + count

    def merge_solver_stats(self, stats: Optional[SolverStats]) -> None:
        if stats is None:
            return
        with self._lock:
            self._solver.merge(stats)
            self._solver_merges += 1

    def record_robustness(self, counter: str, count: int = 1) -> None:
        """Bump one of :data:`ROBUSTNESS_COUNTERS`."""
        with self._lock:
            self._robustness[counter] = (
                self._robustness.get(counter, 0) + count
            )

    def record_diagnostics(self, codes) -> None:
        """Count emitted diagnostics per stable ``RP####`` code.

        Fed from each freshly computed check outcome (cache replays do
        not double-count); the per-code totals tell operators which
        rejections their users actually hit.
        """
        with self._lock:
            for code in codes:
                self._diagnostics[code] = self._diagnostics.get(code, 0) + 1

    # -- reading -------------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """JSON-ready view; the ``stats`` RPC result."""
        with self._lock:
            hits, misses = self._sessions["hits"], self._sessions["misses"]
            lookups = hits + misses
            return {
                "uptime_seconds": time.monotonic() - self._started,
                "requests": {
                    method: dict(statuses)
                    for method, statuses in sorted(self._requests.items())
                },
                "latency": {
                    method: {
                        "queue": self._queue_latency[method].snapshot()
                        if method in self._queue_latency
                        else None,
                        "service": histogram.snapshot(),
                    }
                    for method, histogram in sorted(
                        self._service_latency.items()
                    )
                },
                "sessions": {
                    **self._sessions,
                    "hit_rate": hits / lookups if lookups else 0.0,
                },
                "solver": {
                    "rollup": self._solver.as_dict(),
                    "merged_runs": self._solver_merges,
                },
                "diagnostics": dict(sorted(self._diagnostics.items())),
                "robustness": dict(sorted(self._robustness.items())),
            }

    def render_text(self) -> str:
        """The human-readable dump written at shutdown."""
        snap = self.snapshot()
        lines = [
            "rowpoly serve metrics "
            f"(uptime {snap['uptime_seconds']:.1f}s)",
        ]
        for method, statuses in snap["requests"].items():
            total = sum(statuses.values())
            detail = ", ".join(
                f"{status}={count}"
                for status, count in sorted(statuses.items())
                if count
            )
            lines.append(f"  {method}: {total} requests ({detail})")
            latency = snap["latency"].get(method)
            if latency:
                service = latency["service"]
                lines.append(
                    f"    service p50={service['p50'] * 1000:.1f}ms "
                    f"p90={service['p90'] * 1000:.1f}ms "
                    f"p99={service['p99'] * 1000:.1f}ms "
                    f"max={service['max'] * 1000:.1f}ms"
                )
        sessions = snap["sessions"]
        lines.append(
            f"  sessions: hit_rate={sessions['hit_rate']:.2f} "
            f"(hits={sessions['hits']}, misses={sessions['misses']}, "
            f"evictions={sessions['evictions']}, "
            f"invalidations={sessions['invalidations']})"
        )
        solver = snap["solver"]["rollup"]
        lines.append(
            f"  solver: queries={solver['queries']} "
            f"conflicts={solver['conflicts']} "
            f"propagations={solver['propagations']} "
            f"cache_hits={solver['cache_hits']} "
            f"wall={solver['wall_seconds']:.3f}s"
        )
        if snap["diagnostics"]:
            detail = ", ".join(
                f"{code}={count}"
                for code, count in snap["diagnostics"].items()
            )
            lines.append(f"  diagnostics: {detail}")
        robustness = snap["robustness"]
        if any(robustness.values()):
            detail = ", ".join(
                f"{name}={count}"
                for name, count in robustness.items()
                if count
            )
            lines.append(f"  robustness: {detail}")
        return "\n".join(lines)
