"""The daemon's metrics subsystem.

Three kinds of instruments, all behind one lock (contention is negligible
next to an inference request):

* **counters** — requests by method and outcome status, session-registry
  traffic (hits/misses/evictions/invalidations), totals;
* **latency histograms** — per method, split into *queue* time (submit →
  worker pickup; the backpressure signal) and *service* time (worker
  pickup → response).  Buckets are geometric from 100µs to ~2 minutes, so
  p50/p90/p99 come out of bucket interpolation with bounded error and the
  snapshot stays a few hundred bytes;
* **solver rollup** — one :class:`~repro.boolfn.engine.SolverStats` that
  every completed check's per-declaration telemetry is merged into
  (:meth:`SolverStats.merge`), the daemon-lifetime analogue of
  ``rowpoly check --solver-stats``.

:meth:`ServerMetrics.snapshot` is the payload of the ``stats`` RPC;
:meth:`ServerMetrics.render_text` is what the daemon dumps on SIGTERM.
:func:`aggregate_snapshots` folds several snapshots into one fleet view —
the sharded router's ``stats`` RPC serves the aggregate of its shards
(plus its own local counters) alongside the per-shard snapshots.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from ..boolfn.engine import SolverStats

#: Geometric latency bucket upper bounds, in seconds (last bucket open).
_BUCKET_BOUNDS: tuple[float, ...] = tuple(
    0.0001 * (2.0 ** i) for i in range(21)
)


def _sum_trees(trees: list) -> object:
    """Fold JSON trees: dicts merge over the *union* of keys, numbers sum.

    Deliberately tolerant of skew: a mixed-version fleet may have shards
    that report counters their peers do not (new ``store_*`` counters
    during a rolling restart, retired ones after an upgrade).  A key is
    summed across the shards that have it and never raises; a counter
    present on one shard and missing (or ``None``) on another sums the
    values that exist.  Non-numeric leaves (e.g. ``dispatch_class``)
    keep the first non-empty value — an aggregate cares about counters.
    """
    dicts = [t for t in trees if isinstance(t, dict)]
    if dicts:
        keys: list[str] = []
        for tree in dicts:
            for key in tree:
                if key not in keys:
                    keys.append(key)
        return {
            key: _sum_trees([t[key] for t in dicts if key in t])
            for key in keys
        }
    numbers = [t for t in trees if isinstance(t, (int, float))
               and not isinstance(t, bool)]
    if numbers:
        return sum(numbers)
    for tree in trees:
        if tree not in (None, ""):
            return tree
    return trees[0] if trees else None


def aggregate_snapshots(snapshots: list[dict]) -> dict:
    """One fleet-wide view of several :meth:`ServerMetrics.snapshot` dicts.

    Counters (``requests``, ``sessions``, ``store``, ``diagnostics``,
    ``robustness``, the solver rollup) are summed; the session and store
    ``hit_rate``\\ s are recomputed from the summed hits/misses;
    ``uptime_seconds`` is the maximum.  Latency *percentiles* cannot be
    merged from snapshots, so the aggregate keeps only the mergeable
    fields per method (``count`` summed, ``mean`` count-weighted,
    ``max`` of maxima) — per-shard percentiles stay available in the
    router's per-shard listing.
    """
    snapshots = [s for s in snapshots if isinstance(s, dict)]
    if not snapshots:
        return {}
    aggregate: dict[str, object] = {}
    aggregate["uptime_seconds"] = max(
        s.get("uptime_seconds", 0.0) for s in snapshots
    )
    for section in ("requests", "diagnostics", "robustness", "solver",
                    "audit", "overload"):
        aggregate[section] = _sum_trees(
            [s.get(section, {}) for s in snapshots]
        )
    # Ratios are recomputed from the summed counters, never averaged —
    # an average of per-shard hit rates weights an idle shard the same
    # as a busy one.
    sessions = _sum_trees([s.get("sessions", {}) for s in snapshots])
    if isinstance(sessions, dict):
        hits = sessions.get("hits", 0)
        lookups = hits + sessions.get("misses", 0)
        sessions["hit_rate"] = hits / lookups if lookups else 0.0
    aggregate["sessions"] = sessions
    store = _sum_trees([s.get("store", {}) for s in snapshots])
    if isinstance(store, dict):
        hits = store.get("hits", 0)
        lookups = hits + store.get("misses", 0)
        store["hit_rate"] = hits / lookups if lookups else 0.0
    aggregate["store"] = store
    latency: dict[str, dict] = {}
    for snapshot in snapshots:
        for method, split in (snapshot.get("latency") or {}).items():
            slot = latency.setdefault(
                method,
                {"service": {"count": 0, "mean": 0.0, "max": 0.0}},
            )["service"]
            service = (split or {}).get("service") or {}
            count = service.get("count", 0)
            if count:
                merged = slot["count"] + count
                slot["mean"] = (
                    slot["mean"] * slot["count"]
                    + service.get("mean", 0.0) * count
                ) / merged
                slot["count"] = merged
                slot["max"] = max(slot["max"], service.get("max", 0.0))
    aggregate["latency"] = latency
    return aggregate


class Histogram:
    """A fixed-bucket latency histogram with interpolated percentiles."""

    __slots__ = ("counts", "count", "total", "max")

    def __init__(self) -> None:
        self.counts = [0] * (len(_BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        index = 0
        while index < len(_BUCKET_BOUNDS) and seconds > _BUCKET_BOUNDS[index]:
            index += 1
        self.counts[index] += 1
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    def percentile(self, q: float) -> float:
        """The q-th percentile (0 < q < 1), linearly interpolated."""
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= rank:
                lower = _BUCKET_BOUNDS[index - 1] if index > 0 else 0.0
                upper = (
                    _BUCKET_BOUNDS[index]
                    if index < len(_BUCKET_BOUNDS)
                    else self.max
                )
                fraction = (rank - seen) / bucket_count
                return lower + (upper - lower) * fraction
            seen += bucket_count
        return self.max

    def snapshot(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.total / self.count if self.count else 0.0,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "max": self.max,
        }


class ServerMetrics:
    """All of the daemon's observable state, thread-safe."""

    #: Request outcome statuses the counters are keyed by.  ``aborted``
    #: is a resource-budget trip (partial report served), ``crashed`` a
    #: worker death mid-request, ``quarantined`` a refusal without
    #: touching the session.
    STATUSES = (
        "ok", "error", "timeout", "cancelled", "rejected", "invalid",
        "aborted", "crashed", "quarantined", "shed",
    )

    #: Robustness event counters (the fault-tolerance subsystem's pulse).
    ROBUSTNESS_COUNTERS = (
        "budget_exceeded",
        "worker_restarts",
        "quarantined_sessions",
        "client_retries",
        "hung_jobs_cancelled",
        "frames_rejected",
    )

    #: Persistent-store counters.  ``hits``/``misses`` are hierarchy-
    #: level lookup outcomes, ``evictions`` are disk entries removed by
    #: gc/clear, ``corrupt_entries`` are envelopes that failed their
    #: self-verification and were quarantined.
    STORE_COUNTERS = ("hits", "misses", "evictions", "corrupt_entries")

    #: Audit-pipeline counters (``rowpoly audit``).  The ``modules_*``
    #: family partitions audited modules by verdict; ``findings_total``
    #: counts deduplicated findings, and the new/resolved/persisting
    #: trio is fed by ``audit diff`` runs against a baseline.
    AUDIT_COUNTERS = (
        "modules_audited",
        "modules_ok",
        "modules_with_findings",
        "modules_aborted",
        "findings_total",
        "findings_new",
        "findings_resolved",
        "findings_persisting",
    )

    #: Overload-control counters.  Breaker transitions are counted on
    #: the router; shed/brownout counters on each daemon (shard); the
    #: fleet aggregate sums both sides into one section.
    #: ``brownout_seconds`` is a float (accumulated spell durations).
    OVERLOAD_COUNTERS = (
        "requests_shed",
        "breaker_open_total",
        "breaker_half_open_total",
        "breaker_close_total",
        "brownout_entries",
        "brownout_exits",
        "brownout_seconds",
        "degraded_served",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._requests: dict[str, dict[str, int]] = {}
        self._queue_latency: dict[str, Histogram] = {}
        self._service_latency: dict[str, Histogram] = {}
        self._sessions = {
            "hits": 0, "misses": 0, "evictions": 0, "invalidations": 0,
        }
        self._solver = SolverStats()
        self._solver_merges = 0
        self._diagnostics: dict[str, int] = {}
        self._robustness = {name: 0 for name in self.ROBUSTNESS_COUNTERS}
        self._store = {name: 0 for name in self.STORE_COUNTERS}
        self._audit = {name: 0 for name in self.AUDIT_COUNTERS}
        self._overload: dict[str, float] = {
            name: 0 for name in self.OVERLOAD_COUNTERS
        }

    # -- recording -----------------------------------------------------
    def record_request(
        self,
        method: str,
        status: str,
        queue_seconds: float = 0.0,
        service_seconds: float = 0.0,
    ) -> None:
        with self._lock:
            per_status = self._requests.setdefault(
                method, {s: 0 for s in self.STATUSES}
            )
            per_status[status] = per_status.get(status, 0) + 1
            if queue_seconds:
                self._queue_latency.setdefault(
                    method, Histogram()
                ).observe(queue_seconds)
            # Refusals at submit never ran: keep them out of the
            # service-latency histograms ("shed" would read as ~0ms).
            if status not in ("rejected", "shed"):
                self._service_latency.setdefault(
                    method, Histogram()
                ).observe(service_seconds)

    def record_session_event(self, event: str, count: int = 1) -> None:
        """``event`` ∈ {hits, misses, evictions, invalidations}."""
        with self._lock:
            self._sessions[event] = self._sessions.get(event, 0) + count

    def merge_solver_stats(self, stats: Optional[SolverStats]) -> None:
        if stats is None:
            return
        with self._lock:
            self._solver.merge(stats)
            self._solver_merges += 1

    def record_store_event(self, event: str, count: int = 1) -> None:
        """Bump one of :data:`STORE_COUNTERS`.

        The signature matches :data:`repro.store.backend.MetricsHook`,
        so a bound ``metrics.record_store_event`` plugs straight into
        :func:`repro.store.open_store`.
        """
        with self._lock:
            self._store[event] = self._store.get(event, 0) + count

    def record_audit_event(self, event: str, count: int = 1) -> None:
        """Bump one of :data:`AUDIT_COUNTERS`."""
        with self._lock:
            self._audit[event] = self._audit.get(event, 0) + count

    def record_overload_event(self, event: str, count: float = 1) -> None:
        """Bump one of :data:`OVERLOAD_COUNTERS` (floats allowed:
        ``brownout_seconds`` accumulates durations)."""
        with self._lock:
            self._overload[event] = self._overload.get(event, 0) + count

    def record_robustness(self, counter: str, count: int = 1) -> None:
        """Bump one of :data:`ROBUSTNESS_COUNTERS`."""
        with self._lock:
            self._robustness[counter] = (
                self._robustness.get(counter, 0) + count
            )

    def record_diagnostics(self, codes) -> None:
        """Count emitted diagnostics per stable ``RP####`` code.

        Fed from each freshly computed check outcome (cache replays do
        not double-count); the per-code totals tell operators which
        rejections their users actually hit.
        """
        with self._lock:
            for code in codes:
                self._diagnostics[code] = self._diagnostics.get(code, 0) + 1

    # -- reading -------------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """JSON-ready view; the ``stats`` RPC result."""
        with self._lock:
            hits, misses = self._sessions["hits"], self._sessions["misses"]
            lookups = hits + misses
            store_hits = self._store.get("hits", 0)
            store_lookups = store_hits + self._store.get("misses", 0)
            return {
                "uptime_seconds": time.monotonic() - self._started,
                "requests": {
                    method: dict(statuses)
                    for method, statuses in sorted(self._requests.items())
                },
                "latency": {
                    method: {
                        "queue": self._queue_latency[method].snapshot()
                        if method in self._queue_latency
                        else None,
                        "service": histogram.snapshot(),
                    }
                    for method, histogram in sorted(
                        self._service_latency.items()
                    )
                },
                "sessions": {
                    **self._sessions,
                    "hit_rate": hits / lookups if lookups else 0.0,
                },
                "store": {
                    **self._store,
                    "hit_rate": (
                        store_hits / store_lookups if store_lookups else 0.0
                    ),
                },
                "solver": {
                    "rollup": self._solver.as_dict(),
                    "merged_runs": self._solver_merges,
                },
                "diagnostics": dict(sorted(self._diagnostics.items())),
                "robustness": dict(sorted(self._robustness.items())),
                "audit": dict(self._audit),
                "overload": dict(sorted(self._overload.items())),
            }

    def render_text(self) -> str:
        """The human-readable dump written at shutdown."""
        snap = self.snapshot()
        lines = [
            "rowpoly serve metrics "
            f"(uptime {snap['uptime_seconds']:.1f}s)",
        ]
        for method, statuses in snap["requests"].items():
            total = sum(statuses.values())
            detail = ", ".join(
                f"{status}={count}"
                for status, count in sorted(statuses.items())
                if count
            )
            lines.append(f"  {method}: {total} requests ({detail})")
            latency = snap["latency"].get(method)
            if latency:
                service = latency["service"]
                lines.append(
                    f"    service p50={service['p50'] * 1000:.1f}ms "
                    f"p90={service['p90'] * 1000:.1f}ms "
                    f"p99={service['p99'] * 1000:.1f}ms "
                    f"max={service['max'] * 1000:.1f}ms"
                )
        sessions = snap["sessions"]
        lines.append(
            f"  sessions: hit_rate={sessions['hit_rate']:.2f} "
            f"(hits={sessions['hits']}, misses={sessions['misses']}, "
            f"evictions={sessions['evictions']}, "
            f"invalidations={sessions['invalidations']})"
        )
        store = snap["store"]
        if any(v for k, v in store.items() if k != "hit_rate"):
            lines.append(
                f"  store: hit_rate={store['hit_rate']:.2f} "
                f"(hits={store['hits']}, misses={store['misses']}, "
                f"evictions={store['evictions']}, "
                f"corrupt_entries={store['corrupt_entries']})"
            )
        solver = snap["solver"]["rollup"]
        lines.append(
            f"  solver: queries={solver['queries']} "
            f"conflicts={solver['conflicts']} "
            f"propagations={solver['propagations']} "
            f"cache_hits={solver['cache_hits']} "
            f"wall={solver['wall_seconds']:.3f}s"
        )
        if snap["diagnostics"]:
            detail = ", ".join(
                f"{code}={count}"
                for code, count in snap["diagnostics"].items()
            )
            lines.append(f"  diagnostics: {detail}")
        robustness = snap["robustness"]
        if any(robustness.values()):
            detail = ", ".join(
                f"{name}={count}"
                for name, count in robustness.items()
                if count
            )
            lines.append(f"  robustness: {detail}")
        overload = snap.get("overload") or {}
        if any(overload.values()):
            detail = ", ".join(
                f"{name}={count:.3f}" if isinstance(count, float)
                else f"{name}={count}"
                for name, count in overload.items()
                if count
            )
            lines.append(f"  overload: {detail}")
        audit = snap.get("audit") or {}
        if any(audit.values()):
            detail = ", ".join(
                f"{name}={count}"
                for name, count in audit.items()
                if count
            )
            lines.append(f"  audit: {detail}")
        return "\n".join(lines)
