"""The thin client: ``rowpoly client`` and ``rowpoly check --server``.

A :class:`ServeClient` speaks the newline-delimited JSON-RPC of
:mod:`repro.server.protocol` over one TCP connection, synchronously: send
a request, read lines until the matching ``id`` comes back.  (The daemon
may interleave responses to pipelined requests; matching by id keeps the
client correct either way.)

:func:`check_files_via_server` is the batch driver behind
``rowpoly check --server ADDR``: it reads each file locally, ships the
source to the daemon, and reassembles payloads of exactly the shape the
offline checker produces — so the downstream printing/exit-code logic in
the CLI is shared and the ``--json`` output is byte-identical by
construction.
"""

from __future__ import annotations

import hashlib
import json
import socket
import threading
import time
from random import Random
from typing import Any, Callable, Optional

from ..infer.state import FlowOptions
from .protocol import RETRYABLE_CODES
from .service import EXIT_USAGE
from .supervisor import backoff_delay


class ServeError(Exception):
    """An error response from the daemon, with its structured payload."""

    def __init__(self, code: int, name: str, message: str,
                 data: Optional[dict] = None) -> None:
        super().__init__(message)
        self.code = code
        self.name = name
        self.data = data or {}


def parse_address(address: str) -> tuple[str, int]:
    """``HOST:PORT``, ``:PORT`` or bare ``PORT`` → (host, port)."""
    host, _, port_text = address.rpartition(":")
    if not host:
        host = "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"bad server address {address!r} (expected HOST:PORT)"
        ) from None
    return host, port


class ServeClient:
    """One synchronous JSON-RPC connection to a running daemon."""

    def __init__(self, address: str, timeout: Optional[float] = None) -> None:
        host, port = parse_address(address)
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("r", encoding="utf-8")
        self._writer = self._sock.makefile("w", encoding="utf-8")
        self._lock = threading.Lock()
        self._next_id = 0

    def close(self) -> None:
        for closable in (self._reader, self._writer, self._sock):
            try:
                closable.close()
            except OSError:
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # raw RPC
    # ------------------------------------------------------------------
    def call(
        self, method: str, params: Optional[dict[str, Any]] = None
    ) -> dict[str, Any]:
        """One round trip; returns the raw response object."""
        with self._lock:
            self._next_id += 1
            request_id = self._next_id
            line = json.dumps(
                {"id": request_id, "method": method, "params": params or {}},
                separators=(",", ":"),
                sort_keys=True,
            )
            self._writer.write(line + "\n")
            self._writer.flush()
            while True:
                response_line = self._reader.readline()
                if not response_line:
                    raise ConnectionError(
                        "server closed the connection mid-request"
                    )
                response = json.loads(response_line)
                if response.get("id") == request_id:
                    return response

    def request(
        self, method: str, params: Optional[dict[str, Any]] = None
    ) -> Any:
        """One round trip; unwraps ``result`` or raises :class:`ServeError`."""
        response = self.call(method, params)
        if "error" in response:
            error = response["error"]
            raise ServeError(
                error.get("code", 0),
                error.get("name", "error"),
                error.get("message", "server error"),
                error.get("data"),
            )
        return response.get("result")

    # ------------------------------------------------------------------
    # convenience methods
    # ------------------------------------------------------------------
    def check(
        self,
        path: str,
        source: Optional[str] = None,
        engine: Optional[str] = None,
        options: Optional[dict[str, Any]] = None,
        deadline_ms: Optional[float] = None,
        budget: Optional[dict[str, Any]] = None,
        retry: Optional[int] = None,
        fingerprint: Optional[str] = None,
    ) -> dict[str, Any]:
        params: dict[str, Any] = {"path": path}
        if source is not None:
            params["source"] = source
        if engine is not None:
            params["engine"] = engine
        if options is not None:
            params["options"] = options
        if deadline_ms is not None:
            params["deadline_ms"] = deadline_ms
        if budget is not None:
            params["budget"] = budget
        if retry:
            params["retry"] = retry
        if fingerprint is not None:
            params["fingerprint"] = fingerprint
        return self.request("check", params)

    def stats(self) -> dict[str, Any]:
        return self.request("stats")

    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    def cancel(self, request_id: object) -> bool:
        return bool(
            self.request("cancel", {"id": request_id}).get("cancelled")
        )

    def shutdown(self) -> dict[str, Any]:
        return self.request("shutdown")


def request_fingerprint(path: str, source: str, engine: str) -> str:
    """Stable identity of one check request, for idempotent retries.

    A retried request carries the same fingerprint as the original, so
    the daemon's replay cache recognises it — a response lost to a
    connection reset is recomputed as a warm replay hit, not a second
    full inference.
    """
    digest = hashlib.sha256(
        f"{path}\x00{engine}\x00{source}".encode()
    ).hexdigest()
    return digest[:24]


class RetryingClient:
    """A :class:`ServeClient` wrapper with bounded, jittered retries.

    Retries exactly the *retryable-unavailable* answers
    (:data:`repro.server.protocol.RETRYABLE_CODES`: 423/429/502/503) and
    transport failures (connection reset/refused), with exponential
    backoff, seeded jitter, and the server's ``retry_after_ms`` hint as a
    floor.  Requests are idempotent by fingerprint, so a retry after a
    lost response is safe.  Everything else — type errors, timeouts,
    invalid params — is the *answer* and is never retried.
    """

    def __init__(
        self,
        address: str,
        retries: int = 4,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        seed: int = 0,
        timeout: Optional[float] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.address = address
        self.retries = retries
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.timeout = timeout
        self._sleep = sleep
        self._rng = Random(seed)
        self._client: Optional[ServeClient] = None
        #: Total retry round trips performed (soak-test accounting).
        self.retries_performed = 0

    # -- connection management -----------------------------------------
    def connect(self) -> "RetryingClient":
        """Connect eagerly (no retry): callers that want unreachable
        servers reported up front, not retried per request."""
        self._connected()
        return self

    def _connected(self) -> ServeClient:
        if self._client is None:
            self._client = ServeClient(self.address, timeout=self.timeout)
        return self._client

    def _disconnect(self) -> None:
        client, self._client = self._client, None
        if client is not None:
            client.close()

    def close(self) -> None:
        self._disconnect()

    def __enter__(self) -> "RetryingClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the retry loop ------------------------------------------------
    def check(
        self,
        path: str,
        source: str,
        engine: str = "flow",
        options: Optional[dict[str, Any]] = None,
        deadline_ms: Optional[float] = None,
        budget: Optional[dict[str, Any]] = None,
    ) -> dict[str, Any]:
        """One check with retries; raises the last error when exhausted.

        Retries also stop — raising the error in hand — once the caller's
        *overall* deadline has expired: sleeping and resending a request
        whose ``deadline_ms`` is already spent can only earn another
        rejection, so an overloaded fleet sheds that client instead of
        absorbing its futile retry storm.
        """
        fingerprint = request_fingerprint(path, source, engine)
        deadline_at: Optional[float] = None
        if deadline_ms is not None:
            deadline_at = time.monotonic() + deadline_ms / 1000.0
        attempt = 0
        while True:
            retry_after: Optional[float] = None
            last_error: BaseException
            try:
                return self._connected().check(
                    path,
                    source,
                    engine=engine,
                    options=options,
                    deadline_ms=deadline_ms,
                    budget=budget,
                    retry=attempt,
                    fingerprint=fingerprint,
                )
            except ServeError as error:
                if error.code not in RETRYABLE_CODES or (
                    attempt >= self.retries
                ):
                    raise
                hint = error.data.get("retry_after_ms")
                if isinstance(hint, (int, float)) and hint > 0:
                    retry_after = hint / 1000.0
                last_error = error
            except (ConnectionError, OSError) as error:
                self._disconnect()
                if attempt >= self.retries:
                    raise
                last_error = error
            attempt += 1
            delay = backoff_delay(
                attempt, self.base_delay, self.max_delay, self._rng
            )
            if retry_after is not None:
                delay = max(delay, retry_after)
            if deadline_at is not None and (
                time.monotonic() + delay >= deadline_at
            ):
                raise last_error
            self.retries_performed += 1
            self._sleep(delay)


def _error_payload(path: str, kind: str, message: str) -> dict[str, Any]:
    """The offline-shaped payload for a request that never got a report."""
    return {
        "file": path,
        "report": {
            "file": path,
            "ok": False,
            "error": kind,
            "message": message,
        },
        "exit": EXIT_USAGE,
        "trace": {},
        "solver_stats": None,
    }


def check_files_batch(
    address: str,
    items: list[tuple[str, str]],
    *,
    engine: str = "flow",
    options: Optional[FlowOptions] = None,
    budget: Optional[dict[str, Any]] = None,
    deadline_ms: Optional[float] = None,
    retries: int = 4,
    retry_seed: int = 0,
    concurrency: int = 1,
) -> list[dict[str, Any]]:
    """Fan ``(path, source)`` pairs across a daemon with N connections.

    The batch driver behind ``rowpoly audit run --server``: sources are
    already in hand (the Discover stage read them), so this only ships
    and reassembles.  ``concurrency`` worker threads each own one
    :class:`RetryingClient` (seeded ``retry_seed + worker``, so retry
    jitter stays deterministic per worker) and take the statically
    interleaved slice ``items[worker::concurrency]`` — a deterministic
    partition, with results placed by original index so the payload list
    is in input order no matter how the threads are scheduled.  Against
    a sharded router every connection can land on a different shard,
    which is what keeps a fleet busy from one audit process.

    Per-item failures degrade exactly like
    :func:`check_files_via_server`: a structured error payload with the
    usage exit, never an exception that loses the rest of the batch.
    """
    if options is None:
        options = FlowOptions()
    wire_options = {"track_fields": options.track_fields, "gc": options.gc}
    workers = max(1, min(concurrency, len(items) or 1))
    payloads: list[Optional[dict[str, Any]]] = [None] * len(items)

    def run_worker(worker: int) -> None:
        with RetryingClient(
            address, retries=retries, seed=retry_seed + worker
        ) as client:
            for index in range(worker, len(items), workers):
                path, source = items[index]
                try:
                    result = client.check(
                        path,
                        source,
                        engine=engine,
                        options=wire_options,
                        deadline_ms=deadline_ms,
                        budget=budget,
                    )
                except ServeError as error:
                    payloads[index] = _error_payload(
                        path, f"Server{error.name}", str(error)
                    )
                    continue
                except (ConnectionError, OSError) as error:
                    payloads[index] = _error_payload(
                        path, "ServerConnectionError", str(error)
                    )
                    continue
                payloads[index] = {
                    "file": path,
                    "report": result["report"],
                    "exit": result["exit"],
                    "trace": result.get("trace", {}),
                    "solver_stats": None,
                }

    if workers == 1:
        run_worker(0)
    else:
        threads = [
            threading.Thread(
                target=run_worker, args=(worker,), daemon=True
            )
            for worker in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    # Positional integrity over convenience: a payload must exist for
    # every input (the Judge stage zips them against the plan), so a
    # slot a dying worker never filled degrades to an error payload.
    return [
        payload
        if payload is not None
        else _error_payload(
            items[index][0], "ServerError", "no response (worker died)"
        )
        for index, payload in enumerate(payloads)
    ]


def check_files_via_server(
    address: str,
    files: list[str],
    engine: str = "flow",
    options: Optional[FlowOptions] = None,
    deadline_ms: Optional[float] = None,
    read_program=None,
    retries: int = 4,
    retry_seed: int = 0,
    budget: Optional[dict[str, Any]] = None,
) -> list[dict[str, Any]]:
    """Drive a file list through a daemon; payloads match the offline path.

    Each payload is ``{"file", "report", "exit", "trace"}`` plus
    ``"solver_stats": None`` (per-request solver telemetry stays on the
    daemon, aggregated under its ``stats`` RPC).  Sources are read locally
    so a daemon on another mount checks what the caller sees; local read
    failures produce the offline checker's IOError report without a round
    trip.

    Retryable-unavailable answers (backpressure, quarantine, worker
    crash) and connection failures are retried up to ``retries`` times
    per file with jittered exponential backoff (seeded by
    ``retry_seed``); requests are idempotent by fingerprint so a retry
    never double-checks.
    """
    if read_program is None:
        def read_program(path: str) -> str:
            with open(path) as handle:
                return handle.read()

    if options is None:
        options = FlowOptions()
    wire_options = {"track_fields": options.track_fields, "gc": options.gc}
    payloads: list[dict[str, Any]] = []
    with RetryingClient(
        address, retries=retries, seed=retry_seed
    ).connect() as client:
        for path in files:
            try:
                source = read_program(path)
            except OSError as error:
                payloads.append(
                    {
                        "file": path,
                        "report": {
                            "file": path,
                            "ok": False,
                            "error": "IOError",
                            "message": str(error),
                        },
                        "exit": EXIT_USAGE,
                        "trace": {},
                        "solver_stats": None,
                    }
                )
                continue
            try:
                result = client.check(
                    path,
                    source,
                    engine=engine,
                    options=wire_options,
                    deadline_ms=deadline_ms,
                    budget=budget,
                )
            except ServeError as error:
                payloads.append(
                    {
                        "file": path,
                        "report": {
                            "file": path,
                            "ok": False,
                            "error": f"Server{error.name}",
                            "message": str(error),
                        },
                        "exit": EXIT_USAGE,
                        "trace": {},
                        "solver_stats": None,
                    }
                )
                continue
            except (ConnectionError, OSError) as error:
                payloads.append(
                    {
                        "file": path,
                        "report": {
                            "file": path,
                            "ok": False,
                            "error": "ServerConnectionError",
                            "message": str(error),
                        },
                        "exit": EXIT_USAGE,
                        "trace": {},
                        "solver_stats": None,
                    }
                )
                continue
            payloads.append(
                {
                    "file": path,
                    "report": result["report"],
                    "exit": result["exit"],
                    "trace": result.get("trace", {}),
                    "solver_stats": None,
                }
            )
    return payloads
