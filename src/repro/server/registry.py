"""LRU-bounded pool of warm inference sessions, keyed by module path.

One :class:`~repro.infer.session.InferSession` per (path, engine,
options) key.  Each entry carries its own lock — requests for the *same*
module serialise (an ``InferSession`` is single-writer by design), while
requests for different modules run concurrently across the worker pool.

Invalidation is fingerprint-based: an entry remembers the content hash of
the last source it checked and the finished outcome.  A request whose
source hashes identically is a **replay hit** and returns the stored
outcome without touching the engine; a differing hash flows into
``InferSession.recheck``, which re-infers only what the edit actually
invalidated (an *invalidation*, counted separately from a miss).

Eviction is LRU on the registry order.  Evicting drops the registry's
reference only — a worker still holding the entry finishes its request on
the live object; subsequent requests for that path start a cold session.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from ..infer import InferSession
from ..infer.state import FlowOptions
from ..store.backend import CacheBackend
from ..store.keys import options_key
from ..testing.faults import fault_point
from .metrics import ServerMetrics
from .service import CheckOutcome

__all__ = ["SessionEntry", "SessionRegistry", "options_key"]


@dataclass
class SessionEntry:
    """One warm session plus its replay state."""

    key: tuple
    session: InferSession
    lock: threading.Lock = field(default_factory=threading.Lock)
    fingerprint: str = ""
    outcome: Optional[CheckOutcome] = None
    checks: int = 0


class SessionRegistry:
    """Thread-safe LRU map: (path, engine, options) → warm session.

    ``options_key`` — the tuple of session-relevant option fields that
    co-keys entries — now lives in :mod:`repro.store.keys` (the cache
    hierarchy's one source of key truth) and is re-exported here.
    """

    def __init__(
        self,
        capacity: int = 32,
        metrics: Optional[ServerMetrics] = None,
        store: Optional[CacheBackend] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("session registry capacity must be >= 1")
        self.capacity = capacity
        self.metrics = metrics
        #: Persistent store handed to every session this registry
        #: creates; an evicted-and-recreated session warms from it.
        self.store = store
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, SessionEntry]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def acquire(
        self,
        path: str,
        engine: str = "flow",
        options: Optional[FlowOptions] = None,
    ) -> SessionEntry:
        """The warm entry for a module path, creating (and evicting) LRU.

        The caller must take ``entry.lock`` around its use of the session;
        the registry lock only guards the map itself.
        """
        fault_point("registry.acquire")
        key = (path, engine, options_key(options))
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                return entry
            entry = SessionEntry(
                key=key,
                session=InferSession(engine, options, store=self.store),
            )
            self._entries[key] = entry
            evicted = 0
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
        if evicted and self.metrics is not None:
            self.metrics.record_session_event("evictions", evicted)
        return entry

    def classify_request(
        self, entry: SessionEntry, fingerprint: str
    ) -> str:
        """'hit' (replay), 'invalidate' (warm, edited) or 'miss' (cold).

        Purely a metrics label; call with ``entry.lock`` held.
        """
        if entry.outcome is not None and entry.fingerprint == fingerprint:
            return "hit"
        return "invalidate" if entry.checks else "miss"

    def record(self, label: str) -> None:
        if self.metrics is None:
            return
        event = {
            "hit": "hits", "miss": "misses", "invalidate": "invalidations",
        }[label]
        self.metrics.record_session_event(event)

    def evict(self, path: str, engine: str = "flow",
              options: Optional[FlowOptions] = None) -> bool:
        """Explicitly drop one entry (used by tests and admin tooling)."""
        key = (path, engine, options_key(options))
        with self._lock:
            removed = self._entries.pop(key, None)
        if removed is not None and self.metrics is not None:
            self.metrics.record_session_event("evictions")
        return removed is not None
