"""repro.api — the stable library facade for embedding the checker.

Tooling that drives the reproduction programmatically (editors, build
systems, test harnesses) should import from here and nowhere deeper:

    >>> from repro.api import check_source
    >>> report = check_source("bad = #foo {}")
    >>> report.ok
    False
    >>> report.codes()
    ['RP0001']

Everything this module returns is built from the *stable report* — the
same deterministic, timing-free JSON payload that ``rowpoly check
--json`` prints and the ``rowpoly serve`` daemon sends in ``check``
responses.  All three surfaces call
:func:`repro.server.service.check_source` underneath, so a result
observed through the library is byte-for-byte the result the CLI and the
daemon would report for the same source (the parity contract the
integration suite enforces).

Stability promises:

* :class:`CheckReport` fields and :meth:`CheckReport.as_dict` keys only
  grow, never change meaning;
* diagnostic ``code`` values are append-only (see
  :mod:`repro.diag.codes`);
* the JSON shape is published as ``docs/schema/check-report.schema.json``
  and validated in CI.

The pre-diagnostics ``repro.infer.diagnostics.explain_unsat`` helper is
deprecated in favour of this facade plus :mod:`repro.diag`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from .boolfn.engine import SolverStats
from .infer.state import FlowOptions
from .server.service import (
    CheckOutcome,
    check_source as _service_check_source,
    diagnostic_codes,
    report_aborted,
)
from .util import Budget


@dataclass(frozen=True)
class CheckReport:
    """The outcome of checking one module source.

    ``report`` is the stable JSON payload (deterministic: no timings, no
    cache provenance, no solver-level identifiers); ``trace`` and
    ``solver_stats`` are its non-stable companions and never equal
    between runs.
    """

    #: The path label the check ran under (``<string>`` for raw source).
    path: str
    #: The stable JSON payload, exactly as the CLI/daemon emit it.
    report: dict[str, object]
    #: CLI exit-code convention: 0 well-typed, 1 ill-typed, 2 unusable
    #: input (parse/lex/IO failure), 3 partial (a resource budget ran
    #: out: at least one declaration aborted, none actually failed).
    exit_code: int
    #: Content hash of the source (daemon warm-session key).
    fingerprint: str = ""
    #: Digest of the producing configuration (engine + options) — the
    #: same digest persistent-store keys fold in
    #: (:func:`repro.store.keys.config_digest`), surfaced so consumers
    #: (e.g. audit findings) can record *which* configuration produced
    #: a result.  Not part of the stable ``report`` payload.
    config_digest: str = ""
    #: Per-phase wall times; informational only.
    trace: dict[str, float] = field(default_factory=dict, compare=False)
    #: Solver telemetry of the run; informational only.
    solver_stats: Optional[SolverStats] = field(
        default=None, compare=False
    )

    @property
    def ok(self) -> bool:
        return bool(self.report.get("ok"))

    @property
    def aborted(self) -> bool:
        """Whether the report is partial: some declaration hit a
        resource budget (``RP0998``) and went unverified."""
        return report_aborted(self.report)

    @property
    def decls(self) -> list[dict[str, object]]:
        """Per-declaration payloads (empty for file-level failures)."""
        decls = self.report.get("decls")
        return list(decls) if isinstance(decls, list) else []

    @property
    def diagnostics(self) -> list[dict[str, object]]:
        """Every structured diagnostic in the report, in report order.

        Each entry is the JSON encoding of a
        :class:`repro.diag.Diagnostic` (``code``, ``severity``,
        ``message``, ``label``, ``pos``, ``witness``, ``related``).
        """
        found: list[dict[str, object]] = []
        top = self.report.get("diagnostics")
        if isinstance(top, list):
            found.extend(top)
        for decl in self.decls:
            nested = decl.get("diagnostics")
            if isinstance(nested, list):
                found.extend(nested)
        return found

    def codes(self) -> list[str]:
        """The stable ``RP####`` codes present, in report order."""
        return diagnostic_codes(self.report)

    def as_dict(self) -> dict[str, object]:
        """The stable JSON payload (a copy; mutate freely)."""
        return dict(self.report)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The payload as JSON text, key-sorted like the CLI's output."""
        return json.dumps(self.report, indent=indent, sort_keys=True)

    @classmethod
    def from_outcome(cls, path: str, outcome: CheckOutcome
                     ) -> "CheckReport":
        return cls(
            path=path,
            report=outcome.report,
            exit_code=outcome.exit,
            fingerprint=outcome.fingerprint,
            config_digest=outcome.config_digest,
            trace=outcome.trace,
            solver_stats=outcome.solver_stats,
        )


def check_source(
    source: str,
    path: str = "<string>",
    *,
    engine: str = "flow",
    options: Optional[FlowOptions] = None,
    budget: Optional[Budget] = None,
    store=None,
) -> CheckReport:
    """Check module source text; never raises for ill-typed input.

    Parse, lex and type failures are reported *in* the
    :class:`CheckReport` (with ``RP####`` diagnostics), exactly as the
    CLI and daemon report them.  A ``budget``
    (:class:`repro.util.Budget`) caps the resources the check may spend;
    exhaustion never raises either — it yields a partial report with
    ``aborted`` declarations (``RP0998``).

    ``store`` (a :class:`repro.store.CacheBackend`, e.g. from
    :func:`repro.store.open_store`) serves and persists results through
    the content-addressed cache hierarchy; cached results are
    byte-identical to fresh ones, and a damaged store degrades to
    misses, never to wrong answers.
    """
    outcome = _service_check_source(
        path, source, engine=engine, options=options, budget=budget,
        store=store,
    )
    return CheckReport.from_outcome(path, outcome)


def check_path(
    path: str,
    *,
    engine: str = "flow",
    options: Optional[FlowOptions] = None,
) -> CheckReport:
    """Check one module file.

    I/O failures are folded into the report (``exit_code`` 2, error
    class ``IOError``) rather than raised, matching ``rowpoly check``.
    """
    try:
        with open(path) as handle:
            source = handle.read()
    except OSError as error:
        return CheckReport(
            path=path,
            report={
                "file": path,
                "ok": False,
                "error": "IOError",
                "message": str(error),
            },
            exit_code=2,
        )
    return check_source(source, path, engine=engine, options=options)


def audit_paths(
    paths: list[str],
    *,
    engine: str = "flow",
    options: Optional[FlowOptions] = None,
    store_dir: Optional[str] = None,
    jobs: int = 1,
    shards: int = 1,
):
    """Audit corpus roots; returns the deterministic findings document.

    The library entry to the ``rowpoly audit`` pipeline
    (:mod:`repro.audit`): Discover the roots into a sharded plan,
    Execute every module through the canonical check routine (with the
    persistent store at ``store_dir``, so warm re-audits are
    near-zero-solve), and Judge the payloads into a findings document —
    deduplicated findings with content-addressed IDs, witness-path
    citations and exact repro commands.  Auditing the same corpus twice
    yields byte-identical JSON.

    Raises :class:`repro.audit.DiscoveryError` for nonexistent roots;
    every other failure mode is data in the document.
    """
    from .audit import run_audit

    return run_audit(
        paths,
        engine=engine,
        options=options,
        store_dir=store_dir,
        jobs=jobs,
        shards=shards,
    ).document


def available_engines() -> list[dict]:
    """The registered engines (name, description, capabilities).

    Derived from :data:`repro.infer.registry.REGISTRY` — the same
    listing ``rowpoly engines --json`` prints, in registration order.
    """
    from .infer.registry import REGISTRY

    return REGISTRY.as_dicts()


def engine_info(name: str) -> dict:
    """Describe one engine; raises
    :class:`repro.infer.registry.UnknownEngineError` for unknown names.
    """
    from .infer.registry import REGISTRY

    return REGISTRY.info(name).as_dict()
