"""Test-support machinery shipped with the package.

Only the fault-injection registry lives here: it must be importable from
production modules (the serving layer calls
:func:`repro.testing.faults.fault_point` at its crash sites), so it
cannot live under ``tests/``.  With no faults installed every hook is a
single attribute load and truthiness check.
"""

from .faults import (  # noqa: F401
    FaultError,
    FaultInjector,
    FaultRule,
    fault_point,
    install,
    install_from_env,
    injected,
    uninstall,
)
