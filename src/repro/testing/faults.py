"""Deterministic seeded fault injection for the serving stack.

The chaos suite (``tests/chaos/``, ``tools/chaos_run.py``) needs to make
the engine and the daemon *fail on purpose* — solver exceptions, worker
crashes, artificial slowness, budget trips — at realistic places, with a
seed so every run is reproducible.  Production code marks those places
with :func:`fault_point`:

    fault_point("scheduler.pickup")

With nothing installed the call is one module-attribute load and a
``None`` check; with an injector installed the named site consults its
rules and possibly raises, sleeps, or both.

Sites are plain strings, registered implicitly by being used.  The ones
wired in today:

====================== ====================================================
``session.check_decl``  just before an engine checks one declaration
``engine.solve``        entry of every :meth:`SatEngine.solve` query
``scheduler.pickup``    a daemon worker picking a job off the queue
``registry.acquire``    the daemon resolving a request to a session
``daemon.handle``       the daemon decoding one request line (the site an
                        ``exit`` rule uses to kill a whole shard process)
``store.get``           the persistent result store reading one entry
``store.put``           the persistent result store writing one entry
``router.forward``      the router forwarding one check to its shard
                        (in-process only: the router never installs from
                        the environment, so ``ROWPOLY_FAULTS`` cannot
                        reach it — tests use :func:`injected`)
``scheduler.submit``    admission control, before a job is enqueued
                        (in-process only for the same reason when
                        targeting the router's own scheduler; shard
                        daemons do see it via the environment)
====================== ====================================================

Rules pick a *kind* of failure:

``error``   raise :class:`FaultError` (an unexpected engine exception)
``crash``   raise :class:`repro.server.supervisor.WorkerCrash` (kills the
            worker thread; the supervisor must respawn it)
``slow``    sleep ``delay_ms`` (drives deadline/watchdog paths)
``budget``  raise :class:`repro.util.BudgetExceeded` (a resource trip)
``exit``    ``os._exit(86)`` — instant process death, no cleanup, no
            drain.  Pointless against the in-process daemon (it kills the
            test too); against a *shard* of the process-sharded router it
            models kill -9 / OOM, driving the respawn + re-route path
``io``      raise :class:`OSError` (disk full, yanked mount, EIO).  Only
            meaningful at the ``store.*`` sites, which sit *inside* the
            store's own try blocks: an injected ``io`` fault degrades the
            lookup to a miss and the write to a no-op, so reports stay
            byte-identical — the property the store chaos arm asserts

Activation is either in-process (:func:`install` / :func:`injected`) or —
for subprocess daemons — via the ``ROWPOLY_FAULTS`` environment variable,
parsed by :func:`install_from_env`:

    ROWPOLY_FAULTS="seed=42;engine.solve:0.1:error;scheduler.pickup:0.02:crash"

Each ``site:rate:kind`` segment may append ``key=value`` extras
(``delay=50`` ms for ``slow``, ``limit=3`` to cap a rule's trips).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from random import Random
from typing import Iterator, Mapping, Optional, Sequence

from ..util import BudgetExceeded

__all__ = [
    "FaultError",
    "FaultInjector",
    "FaultRule",
    "fault_point",
    "install",
    "install_from_env",
    "injected",
    "uninstall",
]


class FaultError(Exception):
    """An injected "unexpected engine exception".

    Deliberately not an ``InferenceError`` and not a ``BudgetExceeded``:
    it models a genuine bug (or cosmic ray) inside the engine, which the
    serving layer must answer as an internal error without poisoning the
    session.
    """


@dataclass
class FaultRule:
    """One (site, probability, kind) arm of an injector."""

    site: str
    rate: float
    kind: str  # "error" | "crash" | "slow" | "budget" | "exit" | "io"
    delay_ms: int = 25
    #: Maximum number of trips (``None`` = unlimited).  A capped rule lets
    #: a soak assert "this request eventually succeeds on retry".
    limit: Optional[int] = None
    trips: int = 0

    def __post_init__(self) -> None:
        if self.kind not in (
            "error", "crash", "slow", "budget", "exit", "io"
        ):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1]: {self.rate!r}")


class FaultInjector:
    """A seeded set of :class:`FaultRule`\\ s consulted at fault points.

    One shared :class:`random.Random` (guarded by a lock — daemon workers
    hit sites from several threads) makes a single-threaded replay with
    the same seed byte-for-byte deterministic; under concurrency the
    per-site *rates* still hold even though interleaving varies.
    """

    def __init__(self, rules: Sequence[FaultRule], seed: int = 0) -> None:
        self.rules = list(rules)
        self.seed = seed
        self._random = Random(seed)
        self._lock = threading.Lock()
        #: site -> number of faults actually tripped (for assertions).
        self.tripped: dict[str, int] = {}

    def hit(self, site: str) -> None:
        """Consult the rules for ``site``; maybe sleep and/or raise."""
        action: Optional[FaultRule] = None
        with self._lock:
            for rule in self.rules:
                if rule.site != site:
                    continue
                if rule.limit is not None and rule.trips >= rule.limit:
                    continue
                if self._random.random() >= rule.rate:
                    continue
                rule.trips += 1
                self.tripped[site] = self.tripped.get(site, 0) + 1
                action = rule
                break
        if action is None:
            return
        if action.kind == "slow":
            time.sleep(action.delay_ms / 1000.0)
            return
        if action.kind == "error":
            raise FaultError(f"injected fault at {site}")
        if action.kind == "budget":
            raise BudgetExceeded(f"injected@{site}", 0, 0)
        if action.kind == "io":
            raise OSError(f"injected I/O fault at {site}")
        if action.kind == "exit":
            import os

            # No flush, no atexit, no drain: the closest a test can get
            # to kill -9 from inside.  86 keeps it distinguishable from
            # a clean exit in process tables.
            os._exit(86)
        # "crash": imported lazily — the supervisor module itself calls
        # into scheduling code that carries fault points.
        from ..server.supervisor import WorkerCrash

        raise WorkerCrash(f"injected worker crash at {site}")

    def summary(self) -> dict[str, int]:
        with self._lock:
            return dict(self.tripped)


#: The installed injector, or ``None`` (the fast path).
_active: Optional[FaultInjector] = None


def fault_point(site: str) -> None:
    """Production-code hook: a no-op unless an injector is installed."""
    injector = _active
    if injector is not None:
        injector.hit(site)


def install(injector: FaultInjector) -> None:
    global _active
    _active = injector


def uninstall() -> None:
    global _active
    _active = None


def active() -> Optional[FaultInjector]:
    return _active


@contextmanager
def injected(
    rules: Sequence[FaultRule], seed: int = 0
) -> Iterator[FaultInjector]:
    """Install an injector for the duration of a ``with`` block."""
    injector = FaultInjector(rules, seed=seed)
    install(injector)
    try:
        yield injector
    finally:
        uninstall()


def parse_spec(spec: str) -> FaultInjector:
    """Parse a ``ROWPOLY_FAULTS`` specification string.

    ``seed=N`` segments set the seed; every other segment is
    ``site:rate:kind`` with optional ``key=value`` extras::

        seed=7;engine.solve:0.1:error;session.check_decl:0.05:slow:delay=40
    """
    seed = 0
    rules: list[FaultRule] = []
    for segment in spec.split(";"):
        segment = segment.strip()
        if not segment:
            continue
        if segment.startswith("seed="):
            seed = int(segment[len("seed="):])
            continue
        fields = segment.split(":")
        if len(fields) < 3:
            raise ValueError(
                f"bad fault segment {segment!r}: want site:rate:kind"
            )
        site, rate, kind = fields[0], float(fields[1]), fields[2]
        extras: dict[str, int] = {}
        for extra in fields[3:]:
            key, _, value = extra.partition("=")
            if key not in ("delay", "limit"):
                raise ValueError(f"unknown fault option {key!r}")
            extras[key] = int(value)
        rules.append(
            FaultRule(
                site=site,
                rate=rate,
                kind=kind,
                delay_ms=extras.get("delay", 25),
                limit=extras.get("limit"),
            )
        )
    return FaultInjector(rules, seed=seed)


def install_from_env(environ: Mapping[str, str]) -> Optional[FaultInjector]:
    """Install from ``ROWPOLY_FAULTS`` when set; the subprocess hook."""
    spec = environ.get("ROWPOLY_FAULTS", "").strip()
    if not spec:
        return None
    injector = parse_spec(spec)
    install(injector)
    return injector
