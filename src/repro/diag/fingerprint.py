"""Stable finding identities for the corpus-audit pipeline.

A *finding* is one diagnostic treated as a durable, re-checkable
judgment rather than a log line: the audit pipeline stores it, diffs it
against baselines, and gates CI on the delta.  That only works if the
same defect keeps the same identity across audits — including audits of
a reorganised tree — so a finding ID is a sha-256 over **content**, never
over location:

* the stable ``RP####`` code,
* the *declaration fingerprint* — the content hash of the failing
  declaration's pretty-printed expression
  (:attr:`repro.lang.module.Decl.fingerprint`; spans excluded), or the
  module source's content fingerprint for file-level findings (parse and
  lex failures have no declaration),
* the *witness shape* — the diagnostic's label plus every witness step's
  ``(kind, description)`` pair.  Descriptions embed in-file positions
  (``record created empty at 3:5``), which survive file renames; file
  paths never enter the hash.

Renaming or moving a module therefore preserves every finding ID, while
any edit to the failing declaration (or a change in *how* it fails)
mints a new one.  Two byte-identical declarations failing identically in
two different files share one ID — the audit layer models that as one
finding with two occurrence citations, which is the deduplication a
corpus-scale triage view wants.

IDs are the full 64-hex-character sha-256: findings stores are long-
lived artifacts diffed across years of baselines, so no truncation.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

_SEP = "\x00"

#: Version prefix folded into every finding ID.  Bump to orphan all
#: previous IDs when the identity recipe itself changes — a recipe skew
#: must read as "everything new/resolved", never as silent ID collisions.
FINDING_ID_VERSION = 1


def witness_shape(diagnostic: dict) -> tuple[str, ...]:
    """The identity-bearing parts of one diagnostic's JSON encoding.

    The label and the witness steps' ``kind``/``description`` pairs —
    exactly the parts that describe *what* went wrong, not where the
    file lives.  Structured ``pos`` fields are excluded: descriptions
    already carry the in-file anchors, and keeping the shape small makes
    the recipe easy to restate in the findings schema.
    """
    parts: list[str] = [str(diagnostic.get("label") or "")]
    for step in diagnostic.get("witness") or ():
        parts.append(str(step.get("kind", "")))
        parts.append(str(step.get("description", "")))
    return tuple(parts)


def finding_id(
    code: str,
    decl_fingerprint: str,
    shape: Iterable[str] = (),
) -> str:
    """The stable identity of one finding (full sha-256 hex digest)."""
    payload = _SEP.join(
        ("finding", str(FINDING_ID_VERSION), code, decl_fingerprint,
         *shape)
    )
    return hashlib.sha256(payload.encode()).hexdigest()
