"""Map minimal unsat cores of the flow formula β to :class:`Diagnostic`\\ s.

Observation 1 of the paper promises that every flow rejection corresponds
to a concrete path from an empty-record creation to a failing field
access.  :func:`diagnose_unsat` makes that operational:

1. ask the attached :class:`~repro.boolfn.engine.SatEngine` for a
   *minimal* unsat core of β (every clause in it is necessary),
2. find the asserted ``select:FOO@pos`` unit and the refuted
   ``empty-record@pos`` unit inside the core,
3. recover the implication chain between them over the core's binary
   clauses and render it as a witness path, naming the ``via:x@pos``
   hops the (VAR) rule left behind.

Cores from the Horn/dual-Horn/CDCL fragments may connect the endpoints
through wider clauses; the witness then degrades gracefully to its two
endpoints.  When no structured witness survives (provenance lost to
projection, or β was marked unsat outside the clause log) the caller
still gets a diagnostic — the ``RP0999`` fallback naming the asserted
field selections — so *every* unsat rejection carries at least one code
and source anchor.

This module depends only on :mod:`repro.boolfn` and the flag-name
conventions of :mod:`repro.infer.flow`; it takes the inference state
duck-typed (``.beta``, ``.flags``, ``.sat_engine()``) to keep the
layering acyclic.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..boolfn.cnf import Clause
from . import codes
from .diagnostic import Diagnostic, Pos, WitnessStep

_SELECT_PREFIX = "select:"
_EMPTY_PREFIX = "empty-record@"
_VIA_PREFIX = "via:"


def parse_flag_name(
    name: str,
) -> Optional[tuple[str, Optional[str], Optional[Pos]]]:
    """Split a provenance debug name into ``(kind, label, pos)``.

    Recognised shapes (all produced by :mod:`repro.infer.flow`):
    ``select:LABEL@line:col``, ``empty-record@line:col`` and
    ``via:NAME@line:col``.  Returns ``None`` for anything else
    (including the ``f<id>`` fallback names of anonymous flags).
    """
    if name.startswith(_SELECT_PREFIX):
        rest = name[len(_SELECT_PREFIX):]
        label, sep, pos_text = rest.partition("@")
        return ("select", label, Pos.parse(pos_text) if sep else None)
    if name.startswith(_EMPTY_PREFIX):
        return ("empty", None, Pos.parse(name[len(_EMPTY_PREFIX):]))
    if name.startswith(_VIA_PREFIX):
        rest = name[len(_VIA_PREFIX):]
        label, sep, pos_text = rest.partition("@")
        return ("via", label, Pos.parse(pos_text) if sep else None)
    return None


def _step_for(kind: str, label: Optional[str], pos: Optional[Pos]) -> WitnessStep:
    at = f" at {pos}" if pos is not None else ""
    if kind == "empty":
        return WitnessStep("empty", f"record created empty{at}", pos)
    if kind == "via":
        return WitnessStep("via", f"flows through `{label}`{at}", pos)
    if kind == "select":
        return WitnessStep("select", f"field `{label}` selected{at}", pos)
    return WitnessStep("note", f"constrained by {label}{at}", pos)


def _implication_edges(core: list[Clause]) -> dict[int, list[int]]:
    """The implication graph of the core's unit and binary clauses."""
    graph: dict[int, list[int]] = {}

    def add(src: int, dst: int) -> None:
        graph.setdefault(src, []).append(dst)

    for clause in core:
        if len(clause) == 1:
            (a,) = clause
            add(-a, a)
        elif len(clause) == 2:
            a, b = clause
            add(-a, b)
            add(-b, a)
    return graph


def _bfs(graph: dict[int, list[int]], source: int, target: int
         ) -> Optional[list[int]]:
    if source == target:
        return [source]
    parents: dict[int, int] = {source: source}
    queue = deque((source,))
    while queue:
        node = queue.popleft()
        for succ in graph.get(node, ()):
            if succ in parents:
                continue
            parents[succ] = node
            if succ == target:
                path = [succ]
                while path[-1] != source:
                    path.append(parents[path[-1]])
                return list(reversed(path))
            queue.append(succ)
    return None


def _witness_from_path(
    path: list[int], name_of
) -> tuple[WitnessStep, ...]:
    """Render an implication path origin-first, deduplicating hops.

    The path runs *select -> ... -> empty* (the direction the forced
    selection propagates); the user reads the record's life story, so
    the rendering reverses it: created empty, flowed through copies,
    selected at the end.
    """
    steps: list[WitnessStep] = []
    descriptions: set[str] = set()
    for literal in reversed(path):
        parsed = parse_flag_name(name_of(abs(literal)))
        if parsed is None:
            continue
        step = _step_for(*parsed)
        if step.description in descriptions:
            continue
        descriptions.add(step.description)
        steps.append(step)
    # Canonical reading order — creation, flow, selection — regardless of
    # where copies of the endpoint flags sit on the implication path
    # ((VAR) copies inherit the endpoint names, so a path may visit a
    # select-named flag before its last via hop).
    rank = {"empty": 0, "via": 1, "note": 1, "select": 2}
    steps.sort(key=lambda step: rank.get(step.kind, 1))
    return tuple(steps)


def diagnose_core(
    core: list[Clause], name_of
) -> Optional[Diagnostic]:
    """One diagnostic from a minimal core, or ``None`` if it has no
    recognisable field-selection provenance.

    ``name_of`` maps a flag id to its debug name
    (:meth:`repro.boolfn.flags.FlagSupply.name_of`).
    """
    selects: list[tuple[int, str, Optional[Pos]]] = []
    empties: list[tuple[int, Optional[Pos]]] = []
    for clause in core:
        if len(clause) != 1:
            continue
        (literal,) = clause
        parsed = parse_flag_name(name_of(abs(literal)))
        if parsed is None:
            continue
        kind, label, pos = parsed
        if kind == "select" and literal > 0:
            assert label is not None
            selects.append((literal, label, pos))
        elif kind == "empty" and literal < 0:
            empties.append((-literal, pos))
    if not selects:
        return None
    # Deterministic choice: the first selection in source order (minimal
    # cores rarely contain more than one).
    selects.sort(key=lambda s: (s[2] or Pos(0, 0)).as_tuple())
    empties.sort(key=lambda e: (e[1] or Pos(0, 0)).as_tuple())
    select_flag, label, select_pos = selects[0]
    graph = _implication_edges(core)
    witness: tuple[WitnessStep, ...] = ()
    empty_pos: Optional[Pos] = None
    for empty_flag, pos in empties:
        path = _bfs(graph, select_flag, empty_flag)
        if path is not None:
            witness = _witness_from_path(path, name_of)
            empty_pos = pos
            break
    if not witness and empties:
        # Wider (non-binary) clauses connect the endpoints; show them
        # without the intermediate hops.
        empty_flag, empty_pos = empties[0]
        witness = (
            _step_for("empty", None, empty_pos),
            _step_for("select", label, select_pos),
        )
    message = f"field {label!r} is selected but may be absent"
    related: list[tuple[str, Pos]] = []
    if empty_pos is not None:
        message += f" (the record originates from {{}} at {empty_pos})"
        related.append(("record created empty here", empty_pos))
    return Diagnostic(
        code=codes.MISSING_FIELD,
        message=message,
        pos=select_pos,
        label=label,
        witness=witness,
        related=tuple(related),
    )


def fallback_diagnostic(state) -> Diagnostic:
    """The ``RP0999`` diagnostic: unsat without a structured witness.

    Lists the asserted field selections still mentioned by β (or, when
    projection already dropped them, any selection the flag supply ever
    named) so the user gets at least one source anchor.
    """
    name_of = state.flags.name_of
    in_beta = state.beta.variables()
    candidates: list[tuple[Pos, str]] = []
    anywhere: list[tuple[Pos, str]] = []
    for flag, name in sorted(state.flags.named_flags().items()):
        parsed = parse_flag_name(name)
        if parsed is None or parsed[0] != "select":
            continue
        _, label, pos = parsed
        entry = (pos or Pos(0, 0), label or "?")
        anywhere.append(entry)
        if flag in in_beta:
            candidates.append(entry)
    picks = candidates or anywhere
    picks.sort(key=lambda item: item[0].as_tuple())
    message = "a record field may be accessed without having been set"
    pos: Optional[Pos] = None
    if picks:
        rendered = ", ".join(
            f"{label!r} at {where}" for where, label in picks[:3]
        )
        message += f" (asserted selections: {rendered})"
        pos = picks[0][0]
    return Diagnostic(
        code=codes.FLOW_UNSAT_FALLBACK,
        message=message,
        pos=pos,
    )


def diagnose_unsat(state) -> list[Diagnostic]:
    """All diagnostics for an unsatisfiable flow state (never empty).

    ``state`` is duck-typed (:class:`repro.infer.state.FlowState`): it
    must expose ``beta``, ``flags`` and ``sat_engine()``.  Returns ``[]``
    only if β turns out satisfiable after all.

    Cores are preferentially extracted from the state's clause
    *provenance log* (``state.provenance_log``): variable elimination
    rewrites β destructively, and the pre-elimination clauses are what
    the witness path is made of.  The log is equisatisfiable with β, so
    falling back to the live engine (log capped or absent) changes only
    witness quality, never the verdict.
    """
    log = getattr(state, "provenance_log", None)
    if log:
        from ..boolfn.cnf import Cnf
        from ..boolfn.engine import SatEngine

        probe = SatEngine(Cnf(log))
        core = probe.unsat_core()
        # Core-extraction work done on the probe counts toward the run's
        # telemetry (the probe itself is discarded).
        state.sat_engine().stats().merge(probe.stats())
        if core:
            diagnostic = diagnose_core(core, state.flags.name_of)
            if diagnostic is not None:
                return [diagnostic]
        if core is not None:
            return [fallback_diagnostic(state)]
        # The log says satisfiable (it can miss clauses seeded directly
        # into β by a session); fall through to the live formula.
    engine = state.sat_engine()
    core = engine.unsat_core()
    if core is None:
        if state.beta.known_unsat:
            return [fallback_diagnostic(state)]
        return []
    if core:
        diagnostic = diagnose_core(core, state.flags.name_of)
        if diagnostic is not None:
            return [diagnostic]
    return [fallback_diagnostic(state)]
