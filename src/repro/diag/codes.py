"""Stable diagnostic codes for the rowpoly toolchain.

Every user-facing rejection carries exactly one ``RP####`` code.  Codes
are append-only: tooling built on ``rowpoly check --json`` or the serving
daemon keys on them, so a code is never renumbered or reused — a retired
code is kept in the registry with its historical meaning.

Codes group by hundreds:

* ``RP00xx`` — type errors from the inference proper,
* ``RP09xx`` — fallback/internal diagnostics that should still never
  reach the user without *some* source anchor.
"""

from __future__ import annotations

from typing import Optional

#: Field selection can fail: the flow formula forces a field flag both
#: true (a selection) and false (an empty-record origin) — the paper's
#: headline "f expects a field FOO but is called with {}" (Sect. 1).
MISSING_FIELD = "RP0001"
#: The type terms do not unify (constructor clash or occurs check).
UNIFICATION = "RP0002"
#: A variable is neither bound nor a known builtin.
UNBOUND_VARIABLE = "RP0003"
#: The (LETREC) polymorphic-recursion fixpoint did not stabilise.
FIXPOINT_DIVERGENCE = "RP0004"
#: No truth assignment makes the activated conditional unification
#: constraints solvable (the Sect. 5 SMT check).
CONDITIONAL_UNSAT = "RP0005"
#: A module declaration depends on a declaration that failed to check.
DEPENDENCY = "RP0006"
#: The source does not parse.
PARSE = "RP0007"
#: The source does not lex.
LEX = "RP0008"
#: A serving-layer frame was rejected before dispatch: oversized or
#: otherwise malformed JSON-RPC traffic.  Never a verdict about any
#: program; carried in the ``data.rp`` field of protocol error responses.
MALFORMED_FRAME = "RP0997"
#: A declaration's check was aborted because a resource budget ran out
#: (wall clock, solver steps, clause ceiling or core-minimization
#: queries).  Not a type error: the declaration is *unverified*, the
#: report is partial, and re-checking with a larger budget may succeed.
RESOURCE_LIMIT = "RP0998"
#: The flow formula is unsatisfiable but no structured witness could be
#: recovered (e.g. provenance lost to aggressive projection).  Still a
#: real type error; the message lists the asserted field selections.
FLOW_UNSAT_FALLBACK = "RP0999"

#: code -> short title (stable, machine-keyable; the human message on a
#: Diagnostic is free to vary).
REGISTRY: dict[str, str] = {
    MISSING_FIELD: "field may be absent",
    UNIFICATION: "type mismatch",
    UNBOUND_VARIABLE: "unbound variable",
    FIXPOINT_DIVERGENCE: "recursive definition has no finite type",
    CONDITIONAL_UNSAT: "conditional constraints unsatisfiable",
    DEPENDENCY: "dependency failed to check",
    PARSE: "parse error",
    LEX: "lexical error",
    MALFORMED_FRAME: "malformed or oversized frame",
    RESOURCE_LIMIT: "resource limit exceeded",
    FLOW_UNSAT_FALLBACK: "record flow unsatisfiable",
}


def title_of(code: str) -> Optional[str]:
    """The registry title for ``code`` (``None`` for unknown codes)."""
    return REGISTRY.get(code)


def is_known(code: str) -> bool:
    """Whether ``code`` is in the published registry."""
    return code in REGISTRY
