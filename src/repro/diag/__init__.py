"""Structured diagnostics for flow-inference rejections.

The diagnostics subsystem turns *minimal unsat cores* of the flow
formula β (:meth:`repro.boolfn.engine.SatEngine.unsat_core`) into
:class:`Diagnostic` values — stable ``RP####`` code, severity, source
positions and a rendered witness path ("record created empty at 3:5 ->
flows through `g` at 7:2 -> field `foo` selected at 9:10") — consumed
identically by the CLI, the ``--json`` reports, the serving daemon and
its metrics.

Public surface:

* :class:`Diagnostic`, :class:`WitnessStep`, :class:`Pos` — the values,
* :mod:`repro.diag.codes` — the append-only code registry,
* :func:`diagnose_unsat` — flow state -> diagnostics (never empty for
  an unsatisfiable state),
* :func:`diagnose_core` / :func:`fallback_diagnostic` — the pieces,
  exposed for tests and alternative frontends,
* :func:`finding_id` / :func:`witness_shape` — the content-addressed
  identity of a diagnostic as an audit *finding* (stable across file
  moves; see :mod:`repro.diag.fingerprint`).
"""

from . import codes
from .diagnostic import Diagnostic, Pos, WitnessStep, diagnostics_as_dicts
from .fingerprint import FINDING_ID_VERSION, finding_id, witness_shape
from .flow_unsat import (
    diagnose_core,
    diagnose_unsat,
    fallback_diagnostic,
    parse_flag_name,
)

__all__ = [
    "codes",
    "Diagnostic",
    "FINDING_ID_VERSION",
    "Pos",
    "WitnessStep",
    "diagnostics_as_dicts",
    "diagnose_core",
    "diagnose_unsat",
    "fallback_diagnostic",
    "finding_id",
    "parse_flag_name",
    "witness_shape",
]
