"""The :class:`Diagnostic` value — one structured, renderable rejection.

A diagnostic is the unit every reporting surface shares: ``rowpoly
infer``/``check`` text output, ``--json`` reports, the serving daemon's
``check_source`` responses and its per-code metrics counters all consume
the same objects, so a rejection renders identically everywhere.

The JSON encoding (:meth:`Diagnostic.as_dict`) deliberately contains no
solver-level data — no flag ids, no clause indexes — only codes, labels,
messages and source positions.  Flag numbering differs between a cold
check and a warm daemon session; keeping it out of the payload is what
lets offline, ``--jobs N`` and ``--server`` outputs stay byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..lang.ast import Span
from .codes import title_of


@dataclass(frozen=True)
class Pos:
    """A 1-based source position (line, column)."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"

    def as_tuple(self) -> tuple[int, int]:
        return (self.line, self.column)

    @classmethod
    def from_span(cls, span: Optional[Span]) -> "Optional[Pos]":
        if span is None:
            return None
        return cls(span.line, span.column)

    @classmethod
    def parse(cls, text: str) -> "Optional[Pos]":
        """Parse ``line:column`` (the rendering of ``Span.__str__``)."""
        line, sep, column = text.partition(":")
        if not sep or not line.isdigit() or not column.isdigit():
            return None
        return cls(int(line), int(column))

    def as_dict(self) -> dict[str, int]:
        return {"line": self.line, "column": self.column}

    @classmethod
    def from_dict(cls, data: Optional[dict]) -> "Optional[Pos]":
        """Exact inverse of :meth:`as_dict` (``None`` passes through)."""
        if data is None:
            return None
        return cls(int(data["line"]), int(data["column"]))


@dataclass(frozen=True)
class WitnessStep:
    """One hop of a witness path (Observation 1's record-flow chain)."""

    #: ``empty`` (record created empty), ``via`` (flows through a
    #: variable), ``select`` (field selected), or ``note``.
    kind: str
    description: str
    pos: Optional[Pos] = None

    def as_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "kind": self.kind,
            "description": self.description,
        }
        out["pos"] = self.pos.as_dict() if self.pos is not None else None
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "WitnessStep":
        return cls(
            kind=str(data["kind"]),
            description=str(data["description"]),
            pos=Pos.from_dict(data.get("pos")),
        )


@dataclass(frozen=True)
class Diagnostic:
    """One structured rejection with a stable code and source anchors."""

    code: str
    message: str
    severity: str = "error"
    #: Primary source position (where to put the squiggle).
    pos: Optional[Pos] = None
    #: The record label involved, for field errors.
    label: Optional[str] = None
    #: The rendered record-flow chain, origin first:
    #: ``record created empty at 3:5 -> flows through `g` at 7:2 ->
    #: field `foo` selected at 9:10``.
    witness: tuple[WitnessStep, ...] = ()
    #: Secondary positions worth highlighting (message, position).
    related: tuple[tuple[str, Pos], ...] = ()

    @property
    def title(self) -> str:
        """The registry title of the code (message as a last resort)."""
        return title_of(self.code) or self.message

    def witness_text(self) -> Optional[str]:
        """The witness path as one ``->``-joined line, or ``None``."""
        if not self.witness:
            return None
        return " -> ".join(step.description for step in self.witness)

    def render(self) -> str:
        """The canonical single-diagnostic text rendering.

        ``error[RP0001]: <message>`` followed by an indented witness
        line when one exists — identical in CLI text output and daemon
        traces.
        """
        head = f"{self.severity}[{self.code}]: {self.message}"
        witness = self.witness_text()
        if witness is None:
            return head
        return f"{head}\n  witness: {witness}"

    def as_dict(self) -> dict[str, object]:
        """JSON-ready encoding (see module docstring for guarantees)."""
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "label": self.label,
            "pos": self.pos.as_dict() if self.pos is not None else None,
            "witness": [step.as_dict() for step in self.witness],
            "related": [
                {"message": message, "pos": pos.as_dict()}
                for message, pos in self.related
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Diagnostic":
        """Exact inverse of :meth:`as_dict`.

        The persistent result store round-trips diagnostics through
        JSON; ``Diagnostic.from_dict(d.as_dict()) == d`` is what makes a
        disk-served failing report byte-identical to a freshly solved
        one.
        """
        return cls(
            code=str(data["code"]),
            message=str(data["message"]),
            severity=str(data.get("severity", "error")),
            pos=Pos.from_dict(data.get("pos")),
            label=data.get("label"),
            witness=tuple(
                WitnessStep.from_dict(step)
                for step in data.get("witness", ())
            ),
            related=tuple(
                (str(item["message"]), Pos.from_dict(item["pos"]))
                for item in data.get("related", ())
            ),
        )


def diagnostics_as_dicts(
    diagnostics: "tuple[Diagnostic, ...] | list[Diagnostic]",
) -> list[dict[str, object]]:
    """Encode a diagnostic list for a JSON report."""
    return [diagnostic.as_dict() for diagnostic in diagnostics]
